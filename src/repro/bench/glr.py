"""GLR bench: the generalized engine vs LALR and CYK on one workload.

Per grammar, builds one LALR table, replays a deterministic token
workload (seed-0 generated sentences, tiled to a few hundred tokens)
through three recognizers — the deterministic dense-row engine (with
``allow_conflicts=True`` so conflicted grammars run on their
yacc-default winners), the :class:`~repro.parser.glr.GlrParser` over the
same table's conflict-list view, and the cubic
:class:`~repro.parser.cyk.CykRecognizer` — and reports tokens/second
for each plus the GLR/LALR overhead ratio.  Throughput is
**informational** (it depends on the runner); the drift check guards
the machine-independent counters, which are pure functions of the
grammar and the workload:

- ``unresolved_conflicts`` — how nondeterministic the table is;
- ``workload_tokens``, ``gss_nodes``, ``gss_edges``, ``sppf_nodes``,
  ``sppf_families``, ``reductions``, ``shifts`` — the GLR engine's
  exact work, summed over the replay.  On a deterministic table the
  GSS is a chain, so ``gss_edges == gss_nodes - streams`` moves only
  when the grammar (or the engine) changes; on conflicted tables these
  totals pin the degree of stack splitting.

``--baseline`` fails on any counter drift::

    python -m repro.bench.glr --write-baseline BENCH_glr.json
    python -m repro.bench.glr --baseline BENCH_glr.json
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Sequence, Tuple

from ..analysis.derive import SentenceGenerator
from ..grammars import corpus
from ..parser import CykRecognizer, GlrParser, Parser
from ..tables import build_lalr_table

GLR_BASELINE_FORMAT = 1

#: Two deterministic grammars (GSS-degenerates-to-a-chain overhead) and
#: two conflicted ones (real stack splitting).
DEFAULT_GRAMMARS = ["expr", "json", "dangling_else", "lr1_not_lalr"]

#: The workload tiles seed-0 sentences until at least this many tokens.
#: Smaller than the hot-loop bench: CYK replays the same streams cubically.
MIN_WORKLOAD_TOKENS = 400

#: GLR stats accumulated across the replay (forest.stats keys).
_STAT_KEYS = (
    "gss_nodes",
    "gss_edges",
    "sppf_nodes",
    "sppf_families",
    "reductions",
    "shifts",
)


def workload(grammar) -> "List[List[str]]":
    """The deterministic token workload: seed-0 sentences, tiled."""
    sentences = SentenceGenerator(grammar, seed=0).sentences(8, budget=24)
    streams = [
        [symbol.name for symbol in sentence]
        for sentence in sentences
        if sentence
    ]
    if not streams:
        return []
    tiled: "List[List[str]]" = []
    total = 0
    while total < MIN_WORKLOAD_TOKENS:
        for stream in streams:
            tiled.append(stream)
            total += len(stream)
    return tiled


def _tokens_per_second(accepts, streams, repeats: int) -> float:
    total_tokens = sum(len(stream) for stream in streams)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for stream in streams:
            accepts(stream)
        best = min(best, time.perf_counter() - start)
    return total_tokens / best if best > 0 else 0.0


def glr_snapshot(names: "Sequence[str]", repeats: int = 3) -> Dict:
    grammars: "Dict[str, Dict]" = {}
    for name in names:
        raw = corpus.load(name)
        grammar = raw.augmented()
        table = build_lalr_table(grammar)
        streams = workload(grammar)

        lalr = Parser(table, allow_conflicts=True)
        glr = GlrParser(table)
        cyk = CykRecognizer(raw)

        # One profiled GLR replay pins the work counters (the engine's
        # stats are a pure function of table + stream).
        totals = {key: 0 for key in _STAT_KEYS}
        tokens = 0
        for stream in streams:
            forest = glr.parse_forest(stream)
            tokens += forest.token_count
            for key in _STAT_KEYS:
                totals[key] += forest.stats[key]

        lalr_tps = _tokens_per_second(lalr.accepts, streams, repeats)
        glr_tps = _tokens_per_second(glr.accepts, streams, repeats)
        cyk_tps = _tokens_per_second(cyk.accepts, streams, repeats)
        counters = {
            "unresolved_conflicts": len(table.unresolved_conflicts),
            "workload_tokens": tokens,
        }
        counters.update(totals)
        grammars[name] = {
            "counters": counters,
            "throughput": {
                "lalr_tokens_per_sec": lalr_tps,
                "glr_tokens_per_sec": glr_tps,
                "cyk_tokens_per_sec": cyk_tps,
                "glr_overhead": lalr_tps / glr_tps if glr_tps else 0.0,
            },
        }
    return {"format": GLR_BASELINE_FORMAT, "grammars": grammars}


def compare_glr_baseline(
    current: Dict, baseline: Dict
) -> "Tuple[List[List], List[str]]":
    """``(rows, drift)``: informational throughput rows, counter drift."""
    rows: "List[List]" = []
    drift: "List[str]" = []
    if current.get("format") != baseline.get("format"):
        drift.append(
            f"baseline format {baseline.get('format')!r} != "
            f"current {current.get('format')!r}"
        )
    base_grammars = baseline.get("grammars", {})
    for name, entry in current.get("grammars", {}).items():
        base = base_grammars.get(name)
        if base is None:
            drift.append(f"{name}: not present in baseline")
            continue
        for key, base_value in sorted(base.get("counters", {}).items()):
            value = entry["counters"].get(key)
            if value != base_value:
                drift.append(f"{name}: counter {key} {base_value} -> {value}")
        base_throughput = base.get("throughput", {})
        for metric, value in sorted(entry.get("throughput", {}).items()):
            rows.append([name, metric, base_throughput.get(metric, 0.0), value])
    for name in base_grammars:
        if name not in current.get("grammars", {}):
            drift.append(f"{name}: in baseline but not measured")
    return rows, drift


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.glr`` — see the module docstring."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.glr")
    parser.add_argument("grammars", nargs="*", default=DEFAULT_GRAMMARS,
                        help="corpus grammar names "
                             f"(default: {' '.join(DEFAULT_GRAMMARS)})")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repetitions, best-of (default 3)")
    parser.add_argument("--baseline", default="",
                        help="compare against a snapshot JSON "
                             "(exit 1 on counter drift)")
    parser.add_argument("--write-baseline", default="",
                        help="write a snapshot JSON instead of reporting")
    args = parser.parse_args(argv)

    snapshot = glr_snapshot(args.grammars, repeats=args.repeats)

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write_baseline} ({len(snapshot['grammars'])} grammars)")
        return 0

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        rows, drift = compare_glr_baseline(snapshot, baseline)
        print(f"{'grammar':14s} {'metric':22s} {'baseline':>14s} {'now':>14s}")
        for name, metric, base_value, value in rows:
            print(f"{name:14s} {metric:22s} {base_value:14,.2f} {value:14,.2f}")
        if drift:
            print("GLR counter drift (engine or workload changed?):")
            for message in drift:
                print(f"  {message}")
            return 1
        print("GLR counters match the baseline")
        return 0

    for name, entry in snapshot["grammars"].items():
        counters = entry["counters"]
        throughput = entry["throughput"]
        print(
            f"{name:14s} conflicts={counters['unresolved_conflicts']:<3d} "
            f"lalr={throughput['lalr_tokens_per_sec']:11,.0f} tok/s "
            f"glr={throughput['glr_tokens_per_sec']:11,.0f} tok/s "
            f"cyk={throughput['cyk_tokens_per_sec']:9,.0f} tok/s "
            f"(glr overhead {throughput['glr_overhead']:.1f}x)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Benchmark harness: timing, operation counting, and report formatting."""

from .harness import (
    METHODS,
    Timer,
    bench_snapshot,
    compare_baseline,
    cost_row,
    grammar_row,
    measure_methods,
    profile_pipeline,
    speedup,
    sweep,
    time_callable,
)
from .report import dict_rows, format_series, format_table

__all__ = [
    "METHODS",
    "Timer",
    "bench_snapshot",
    "compare_baseline",
    "cost_row",
    "dict_rows",
    "format_series",
    "format_table",
    "grammar_row",
    "measure_methods",
    "profile_pipeline",
    "speedup",
    "sweep",
    "time_callable",
]

"""Scale-out bench: pooled serving vs the single-process service.

Boots a real :class:`~repro.service.ServiceThread` twice — once
in-process (``pool_workers=1``) and once over an N-worker process pool
sharing one ``bin`` artifact store — and drives the same
compile-then-parse recipe against both from several concurrent client
threads.  Reports aggregate parse requests/second per tier —
**informational**, they depend on the runner and its core count (a
single-core machine cannot show pool speedup; CI runners can) — plus
machine-independent counters that are pure functions of the serving
contract:

- ``parse_bytes`` per grammar — responses are canonical JSON, so the
  pooled tier must serve the *same bytes* the in-process tier does;
  ``bytes_identical`` is 1 only when every grammar matched;
- ``requests`` — the recipe itself;
- ``pool_every_worker_served`` / ``pool_spread`` — round-robin routing
  is deterministic, so K pooled requests land ceil/floor(K/N) per
  worker no matter how the clients raced.

``--baseline`` fails on any counter drift::

    python -m repro.bench.scaleout --write-baseline BENCH_scaleout.json
    python -m repro.bench.scaleout --baseline BENCH_scaleout.json
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from typing import Dict, List, Sequence, Tuple

from .service import grammar_tokens

SCALEOUT_BASELINE_FORMAT = 1

DEFAULT_GRAMMARS = ["expr", "json", "mini_c", "toy_java"]
DEFAULT_WORKERS = 4


def _drive(
    port: int,
    grammars: "Sequence[str]",
    requests: int,
    clients: int,
) -> "Tuple[Dict[str, bytes], float, int]":
    """Compile each grammar, then hammer /parse from *clients* threads.

    Returns (parse body per grammar, elapsed seconds, total parses).
    """
    from ..service import Client

    jobs: "List[Tuple[str, List[str]]]" = []
    for name in grammars:
        response = Client(port).post("/compile", {"corpus": name})
        assert response.status == 200, (name, response.status)
        tokens = grammar_tokens(name)
        jobs.extend((name, tokens) for _ in range(requests))

    bodies: "Dict[str, bytes]" = {}
    failures: "List[str]" = []
    lock = threading.Lock()
    cursor = iter(range(len(jobs)))

    def worker() -> None:
        client = Client(port)
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            name, tokens = jobs[index]
            response = client.post("/parse", {"corpus": name, "input": tokens})
            with lock:
                if response.status != 200:
                    failures.append(f"{name}: HTTP {response.status}")
                else:
                    bodies[name] = response.body

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not failures, failures[:5]
    return bodies, elapsed, len(jobs)


def scaleout_snapshot(
    grammars: "Sequence[str]",
    workers: int = DEFAULT_WORKERS,
    requests: int = 24,
    clients: int = 8,
) -> Dict:
    from ..service import ServiceThread, fork_available

    tiers: "Dict[str, Dict]" = {}
    reference_bodies: "Dict[str, bytes]" = {}
    pooled_possible = fork_available() and workers > 1

    for label, pool_workers in (("single", 1), (f"pool{workers}", workers)):
        if pool_workers > 1 and not pooled_possible:
            break
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-scaleout-")
        try:
            with ServiceThread(
                cache_dir=cache_dir,
                cache_backend="bin",
                pool_workers=pool_workers,
            ) as thread:
                bodies, elapsed, total = _drive(
                    thread.port, grammars, requests, clients
                )
                counters: "Dict[str, int]" = {
                    "requests": total,
                    "workers": pool_workers,
                }
                for name in grammars:
                    counters[f"parse_bytes_{name}"] = len(bodies[name])
                if pool_workers == 1:
                    reference_bodies = bodies
                else:
                    counters["bytes_identical"] = int(
                        all(
                            bodies[name] == reference_bodies.get(name)
                            for name in grammars
                        )
                    )
                    from ..service import Client

                    pool = Client(thread.port).get(
                        "/metrics?format=json"
                    ).json()["pool"]
                    served = [
                        pool[f"worker_{i}_served"] for i in range(pool_workers)
                    ]
                    counters["pool_every_worker_served"] = int(
                        all(count >= 1 for count in served)
                    )
                    counters["pool_spread"] = max(served) - min(served)
                    counters["pool_accounted"] = int(
                        sum(served) == pool["completed"] == pool["dispatched"]
                    )
                tiers[label] = {
                    "counters": counters,
                    "throughput": {
                        "parse_requests_per_sec": total / elapsed
                        if elapsed > 0
                        else 0.0,
                        "elapsed_seconds": elapsed,
                    },
                }
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    return {"format": SCALEOUT_BASELINE_FORMAT, "tiers": tiers}


def compare_scaleout_baseline(
    current: Dict, baseline: Dict
) -> "Tuple[List[List], List[str]]":
    """``(rows, drift)``: informational rate rows, counter drift."""
    rows: "List[List]" = []
    drift: "List[str]" = []
    if current.get("format") != baseline.get("format"):
        drift.append(
            f"baseline format {baseline.get('format')!r} != "
            f"current {current.get('format')!r}"
        )
    base_tiers = baseline.get("tiers", {})
    for label, entry in current.get("tiers", {}).items():
        base = base_tiers.get(label)
        if base is None:
            drift.append(f"{label}: not present in baseline")
            continue
        for key, base_value in sorted(base.get("counters", {}).items()):
            value = entry["counters"].get(key)
            if value != base_value:
                drift.append(f"{label}: counter {key} {base_value} -> {value}")
        base_throughput = base.get("throughput", {})
        for metric, value in sorted(entry.get("throughput", {}).items()):
            rows.append([label, metric, base_throughput.get(metric, 0.0), value])
    for label in base_tiers:
        if label not in current.get("tiers", {}):
            drift.append(f"{label}: in baseline but not measured")
    return rows, drift


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.scaleout`` — see the module docstring."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.scaleout")
    parser.add_argument("grammars", nargs="*", default=DEFAULT_GRAMMARS,
                        help="corpus grammar names "
                             f"(default: {' '.join(DEFAULT_GRAMMARS)})")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        metavar="N",
                        help="pool size for the scaled tier (default 4)")
    parser.add_argument("--requests", type=int, default=24, metavar="N",
                        help="parse requests per grammar (default 24)")
    parser.add_argument("--clients", type=int, default=8, metavar="N",
                        help="concurrent client threads (default 8)")
    parser.add_argument("--baseline", default="",
                        help="compare against a snapshot JSON "
                             "(exit 1 on counter drift)")
    parser.add_argument("--write-baseline", default="",
                        help="write a snapshot JSON instead of reporting")
    args = parser.parse_args(argv)

    snapshot = scaleout_snapshot(
        args.grammars,
        workers=args.workers,
        requests=args.requests,
        clients=args.clients,
    )

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write_baseline} ({len(snapshot['tiers'])} tiers)")
        return 0

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        rows, drift = compare_scaleout_baseline(snapshot, baseline)
        print(f"{'tier':10s} {'metric':26s} {'baseline':>12s} {'now':>12s}")
        for label, metric, base_value, value in rows:
            print(f"{label:10s} {metric:26s} {base_value:12,.2f} {value:12,.2f}")
        if drift:
            print("scale-out counter drift (serving contract changed?):")
            for message in drift:
                print(f"  {message}")
            return 1
        print("scale-out counters match the baseline")
        return 0

    single = snapshot["tiers"].get("single")
    for label, entry in snapshot["tiers"].items():
        throughput = entry["throughput"]
        rate = throughput["parse_requests_per_sec"]
        note = ""
        if single is not None and label != "single":
            base_rate = single["throughput"]["parse_requests_per_sec"]
            note = f" ({rate / base_rate:.2f}x aggregate)" if base_rate else ""
            spread = entry["counters"].get("pool_spread")
            note += f" spread={spread}"
        print(f"{label:10s} {rate:10,.1f} parse req/s{note}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Table-artifact benchmarks: representation throughput and load latency.

PR-over-PR the repo grew four interchangeable representations of one
LALR(1) table — the plain dense :class:`~repro.tables.table.ParseTable`,
the sparse default-reduce :class:`~repro.tables.compress.CompressedTable`,
the comb-packed :class:`~repro.tables.displace.DisplacedTable`, and the
mmap-loaded :class:`~repro.tables.binfmt.BinaryTable`.  This module
measures what distinguishes them:

- **engine throughput** (tokens/sec) with each representation driving
  the identical engine over the identical deterministic sentence
  workload, and
- **cold-load latency**: JSON parse + row rebuild vs the binary header
  check + mmap (the binary path defers row decoding entirely).

Wall-clock figures do not transfer across machines, so — exactly like
:mod:`repro.bench.harness` — the baseline file commits to the
**machine-independent** figures only: state counts, dense/populated/comb
cell counts, and the byte sizes of both artifact formats, all of which
are pure functions of the grammar.  ``--baseline`` fails on any drift in
those; the timing columns are printed for context.

CLI::

    python -m repro.bench.artifacts corpus:expr corpus:json \
        --write-baseline BENCH_table_artifacts.json
    python -m repro.bench.artifacts corpus:expr corpus:json \
        --baseline BENCH_table_artifacts.json
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time
from typing import Dict, List, Sequence, Tuple

from ..grammar.grammar import Grammar
from ..parser.engine import Parser
from ..tables.binfmt import load_binary_table, save_binary_table, table_to_bytes
from ..tables.build import build_lalr_table
from ..tables.compress import compress
from ..tables.displace import displace
from ..tables.serialize import load_table, save_table, table_to_dict
from .harness import _load_spec, time_callable

#: Format tag for ``BENCH_table_artifacts.json``.
ARTIFACT_BASELINE_FORMAT = 1

#: Sentence workload knobs (deterministic: seeded generator).
WORKLOAD_SENTENCES = 24
WORKLOAD_BUDGET = 30


def _workload(grammar: Grammar) -> "List[list]":
    from ..analysis.derive import SentenceGenerator

    generator = SentenceGenerator(grammar, seed=0)
    return generator.sentences(WORKLOAD_SENTENCES, budget=WORKLOAD_BUDGET)


def _throughput(parser: Parser, sentences: "List[list]", repeats: int) -> float:
    """Median tokens/sec of *parser* over the sentence workload."""
    total_tokens = sum(len(s) for s in sentences) or 1
    swallow = lambda production, children: None

    def run() -> None:
        for sentence in sentences:
            parser.parse_with_actions(sentence, swallow)

    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        samples.append(time.perf_counter() - start)
    seconds = statistics.median(samples)
    return total_tokens / seconds if seconds else float("inf")


def _cold_load(
    save, load, table, grammar: Grammar, suffix: str, repeats: int
) -> "Tuple[float, int]":
    """(median load seconds, artifact bytes) through a real temp file."""
    descriptor, path = tempfile.mkstemp(suffix=suffix)
    os.close(descriptor)
    try:
        save(table, path)
        size = os.path.getsize(path)
        seconds = time_callable(lambda: load(path, grammar), repeats=repeats)
        return seconds, size
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass


def snapshot_entry(grammar: Grammar, repeats: int = 5) -> Dict:
    """One grammar's artifact row: counters asserted, timings reported."""
    grammar = grammar.augmented()
    table = build_lalr_table(grammar)
    if not table.is_deterministic:
        return {"skipped": "table has unresolved conflicts"}

    displaced = displace(table)
    stats = displaced.packing_stats()
    json_bytes = len(json.dumps(table_to_dict(table)).encode("utf-8"))
    bin_bytes = len(table_to_bytes(table))

    sentences = _workload(grammar)
    representations = {
        "plain": table,
        "compressed": compress(table),
        "displaced": displaced,
    }
    throughput = {
        name: _throughput(Parser(rep), sentences, repeats)
        for name, rep in representations.items()
    }

    json_seconds, _ = _cold_load(
        save_table, load_table, table, grammar, ".json", repeats
    )
    bin_seconds, _ = _cold_load(
        save_binary_table, load_binary_table, table, grammar, ".rtb", repeats
    )
    # The binary representation is measured end-to-end: cold-load the
    # artifact, then parse — the lazy row decode is charged to the parse.
    descriptor, path = tempfile.mkstemp(suffix=".rtb")
    os.close(descriptor)
    try:
        save_binary_table(table, path)
        throughput["binary"] = _throughput(
            Parser(load_binary_table(path, grammar)), sentences, repeats
        )
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass

    return {
        "counters": {
            "n_states": table.n_states,
            "dense_cells": stats["dense_cells"],
            "populated_cells": stats["populated_cells"],
            "comb_slots": stats["comb_slots"],
            "comb_gaps": stats["comb_gaps"],
            "stored_cells": stats["stored_cells"],
            "json_bytes": json_bytes,
            "bin_bytes": bin_bytes,
        },
        "tokens_per_sec": throughput,
        "cold_load_seconds": {"json": json_seconds, "bin": bin_seconds},
    }


def artifacts_snapshot(
    named_grammars: "Sequence[Tuple[str, Grammar]]", repeats: int = 5
) -> Dict:
    """The machine-readable snapshot for baseline comparison."""
    return {
        "format": ARTIFACT_BASELINE_FORMAT,
        "grammars": {
            name: snapshot_entry(grammar, repeats)
            for name, grammar in named_grammars
        },
    }


def compare_artifacts_baseline(
    current: Dict, baseline: Dict
) -> "Tuple[List[List], List[str]]":
    """Diff a snapshot against a baseline.

    Returns ``(rows, drift)``: display rows ``[grammar, metric, baseline,
    current]`` for the informational timings, and drift messages for any
    machine-independent counter that moved — callers fail on drift.
    """
    rows: List[List] = []
    drift: List[str] = []
    base_grammars = baseline.get("grammars", {})
    for name, entry in current.get("grammars", {}).items():
        base = base_grammars.get(name)
        if base is None:
            drift.append(f"{name}: not present in baseline")
            continue
        if "counters" not in entry or "counters" not in base:
            # A grammar skipped on *both* sides for the same reason
            # (e.g. unresolved conflicts) is agreement, not drift.
            if entry.get("skipped") and entry.get("skipped") == base.get("skipped"):
                continue
            skipped = entry.get("skipped") or base.get("skipped") or "no counters"
            drift.append(f"{name}: {skipped}")
            continue
        for key, base_value in sorted(base["counters"].items()):
            value = entry["counters"].get(key)
            if value != base_value:
                drift.append(f"{name}: counter {key} {base_value} -> {value}")
        base_tput = base.get("tokens_per_sec", {})
        for rep, tokens_per_sec in entry.get("tokens_per_sec", {}).items():
            rows.append([
                name,
                f"tokens/sec[{rep}]",
                base_tput.get(rep, 0.0),
                tokens_per_sec,
            ])
        base_load = base.get("cold_load_seconds", {})
        for fmt, seconds in entry.get("cold_load_seconds", {}).items():
            rows.append([
                name,
                f"cold-load ms[{fmt}]",
                base_load.get(fmt, 0.0) * 1e3,
                seconds * 1e3,
            ])
    return rows, drift


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.artifacts`` — see the module docstring."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.artifacts")
    parser.add_argument("grammars", nargs="+",
                        help="grammar files or corpus:<name> specs")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--baseline", default="",
                        help="compare against a snapshot JSON "
                             "(exit 1 on size/packing-counter drift)")
    parser.add_argument("--write-baseline", default="",
                        help="write a snapshot JSON instead of reporting")
    args = parser.parse_args(argv)

    named = [_load_spec(spec) for spec in args.grammars]

    if args.write_baseline:
        snapshot = artifacts_snapshot(named, repeats=args.repeats)
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write_baseline} ({len(snapshot['grammars'])} grammars)")
        return 0

    snapshot = artifacts_snapshot(named, repeats=args.repeats)

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        rows, drift = compare_artifacts_baseline(snapshot, baseline)
        print(f"{'grammar':14s} {'metric':24s} {'baseline':>12s} {'now':>12s}")
        for name, metric, base_value, value in rows:
            print(f"{name:14s} {metric:24s} {base_value:12,.1f} {value:12,.1f}")
        if drift:
            print("artifact-counter drift (representation changed?):")
            for message in drift:
                print(f"  {message}")
            return 1
        print("artifact counters match the baseline")
        return 0

    for name, entry in snapshot["grammars"].items():
        print(f"== {name} ==")
        if "counters" not in entry:
            print(f"  skipped: {entry.get('skipped')}")
            continue
        for key, value in entry["counters"].items():
            print(f"  {key:20s} {value:>12,}")
        for rep, tokens_per_sec in entry["tokens_per_sec"].items():
            print(f"  tokens/sec[{rep}]{'':6s} {tokens_per_sec:>12,.0f}")
        for fmt, seconds in entry["cold_load_seconds"].items():
            print(f"  cold-load[{fmt}]{'':8s} {seconds * 1e6:>10,.1f} us")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())

"""Plain-text table/series rendering for the benchmark harness.

Each benchmark prints the same kind of rows the paper's tables carry;
these helpers keep the formatting consistent (and the outputs diffable
against EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Align *rows* under *headers*; numbers are right-aligned."""
    rendered: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for original, row in zip(rows, rendered):
        padded = []
        for i, text in enumerate(row):
            if isinstance(original[i], (int, float)) and not isinstance(original[i], bool):
                padded.append(text.rjust(widths[i]))
            else:
                padded.append(text.ljust(widths[i]))
        lines.append("  ".join(padded).rstrip())
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: "Dict[str, List[float]]",
    xs: Sequence[object],
    title: str = "",
) -> str:
    """Render figure data as one row per x value, one column per series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def dict_rows(
    entries: "Sequence[Tuple[str, Dict[str, object]]]", columns: Sequence[str]
) -> "List[List[object]]":
    """[(name, metrics), ...] -> rows selecting *columns* from each dict."""
    return [[name] + [metrics.get(c, "") for c in columns] for name, metrics in entries]

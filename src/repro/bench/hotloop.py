"""Hot-loop bench: the specialized engine vs the dense interpreter.

Per grammar, builds one LALR table, replays a deterministic token
workload (seed-0 generated sentences, tiled to a few thousand tokens)
through the plain dense-row engine and the
:class:`~repro.tables.specialize.SpecializedTable` loop, and reports
tokens/second plus the speedup — **informational**, they depend on the
runner — alongside machine-independent counters that are pure functions
of the grammar and the workload:

- ``states``, ``action_cells``, ``populated_cells``, ``default_states``
  — the specialization's shape (a default reduction may appear only on
  fully-uniform reduce rows, so this count moves exactly when the
  grammar or the guard does);
- ``workload_tokens``, ``workload_shifts``, ``workload_reduces`` — the
  replayed work, identical for both engines by the byte-identity
  contract (the suite in ``tests/test_specialize.py`` pins that; this
  bench drift-checks the totals).

``--baseline`` fails on any counter drift::

    python -m repro.bench.hotloop --write-baseline BENCH_hotloop.json
    python -m repro.bench.hotloop --baseline BENCH_hotloop.json
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Sequence, Tuple

from ..analysis.derive import SentenceGenerator
from ..core import instrument
from ..grammars import corpus
from ..parser import Parser
from ..tables import build_lalr_table, specialize

HOTLOOP_BASELINE_FORMAT = 1

#: Deterministic-LALR corpus grammars spanning table sizes.
DEFAULT_GRAMMARS = ["expr", "json", "mini_c", "toy_java"]

#: The workload tiles seed-0 sentences until at least this many tokens.
MIN_WORKLOAD_TOKENS = 2000


def workload(grammar) -> "List[List[str]]":
    """The deterministic token workload: seed-0 sentences, tiled."""
    sentences = SentenceGenerator(grammar, seed=0).sentences(8, budget=40)
    streams = [
        [symbol.name for symbol in sentence]
        for sentence in sentences
        if sentence
    ]
    if not streams:
        return []
    tiled: "List[List[str]]" = []
    total = 0
    while total < MIN_WORKLOAD_TOKENS:
        for stream in streams:
            tiled.append(stream)
            total += len(stream)
    return tiled


def _tokens_per_second(parser: Parser, streams, repeats: int) -> float:
    # accepts() drives the same loop as parse() with a constant-folding
    # semantic callback, so the measurement isolates the engine rather
    # than Node allocation.
    total_tokens = sum(len(stream) for stream in streams)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for stream in streams:
            parser.accepts(stream)
        best = min(best, time.perf_counter() - start)
    return total_tokens / best if best > 0 else 0.0


def hotloop_snapshot(
    names: "Sequence[str]", repeats: int = 3
) -> Dict:
    grammars: "Dict[str, Dict]" = {}
    for name in names:
        grammar = corpus.load(name).augmented()
        table = build_lalr_table(grammar)
        fast_table = specialize(table)
        streams = workload(grammar)

        plain = Parser(table)
        fast = Parser(fast_table)
        # One profiled specialized replay pins the workload counters
        # (identical to the plain engine's by the parity contract).
        with instrument.profile() as collector:
            for stream in streams:
                fast.parse(stream)
        stats = fast_table.specialization_stats()

        plain_tps = _tokens_per_second(plain, streams, repeats)
        fast_tps = _tokens_per_second(fast, streams, repeats)
        grammars[name] = {
            "counters": {
                "states": stats["states"],
                "action_cells": stats["action_cells"],
                "populated_cells": stats["populated_cells"],
                "default_states": stats["default_states"],
                "workload_tokens": collector.counters.get("parse.tokens", 0),
                "workload_shifts": collector.counters.get("parse.shifts", 0),
                "workload_reduces": collector.counters.get("parse.reduces", 0),
            },
            "throughput": {
                "dense_tokens_per_sec": plain_tps,
                "specialized_tokens_per_sec": fast_tps,
                "speedup": fast_tps / plain_tps if plain_tps else 0.0,
            },
        }
    return {"format": HOTLOOP_BASELINE_FORMAT, "grammars": grammars}


def compare_hotloop_baseline(
    current: Dict, baseline: Dict
) -> "Tuple[List[List], List[str]]":
    """``(rows, drift)``: informational throughput rows, counter drift."""
    rows: "List[List]" = []
    drift: "List[str]" = []
    if current.get("format") != baseline.get("format"):
        drift.append(
            f"baseline format {baseline.get('format')!r} != "
            f"current {current.get('format')!r}"
        )
    base_grammars = baseline.get("grammars", {})
    for name, entry in current.get("grammars", {}).items():
        base = base_grammars.get(name)
        if base is None:
            drift.append(f"{name}: not present in baseline")
            continue
        for key, base_value in sorted(base.get("counters", {}).items()):
            value = entry["counters"].get(key)
            if value != base_value:
                drift.append(f"{name}: counter {key} {base_value} -> {value}")
        base_throughput = base.get("throughput", {})
        for metric, value in sorted(entry.get("throughput", {}).items()):
            rows.append([name, metric, base_throughput.get(metric, 0.0), value])
    for name in base_grammars:
        if name not in current.get("grammars", {}):
            drift.append(f"{name}: in baseline but not measured")
    return rows, drift


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.hotloop`` — see the module docstring."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.hotloop")
    parser.add_argument("grammars", nargs="*", default=DEFAULT_GRAMMARS,
                        help="corpus grammar names "
                             f"(default: {' '.join(DEFAULT_GRAMMARS)})")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repetitions, best-of (default 3)")
    parser.add_argument("--baseline", default="",
                        help="compare against a snapshot JSON "
                             "(exit 1 on counter drift)")
    parser.add_argument("--write-baseline", default="",
                        help="write a snapshot JSON instead of reporting")
    args = parser.parse_args(argv)

    snapshot = hotloop_snapshot(args.grammars, repeats=args.repeats)

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write_baseline} ({len(snapshot['grammars'])} grammars)")
        return 0

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        rows, drift = compare_hotloop_baseline(snapshot, baseline)
        print(f"{'grammar':12s} {'metric':28s} {'baseline':>14s} {'now':>14s}")
        for name, metric, base_value, value in rows:
            print(f"{name:12s} {metric:28s} {base_value:14,.0f} {value:14,.0f}")
        if drift:
            print("hot-loop counter drift (specialization changed?):")
            for message in drift:
                print(f"  {message}")
            return 1
        print("hot-loop counters match the baseline")
        return 0

    for name, entry in snapshot["grammars"].items():
        counters = entry["counters"]
        throughput = entry["throughput"]
        print(
            f"{name:12s} states={counters['states']:<5d} "
            f"defaults={counters['default_states']:<4d} "
            f"dense={throughput['dense_tokens_per_sec']:12,.0f} tok/s "
            f"specialized={throughput['specialized_tokens_per_sec']:12,.0f} tok/s "
            f"({throughput['speedup']:.2f}x)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The incremental-session benchmark: edit latency vs full rebuild.

For each corpus grammar this benchmark finds a deterministic
single-terminal substitution that the session machinery can splice
(no :class:`~repro.automaton.lr0_delta.IncrementalFallback`), then
measures the median wall-clock latency of

- a **full rebuild** of the edited grammar — LR(0) automaton, relations,
  both Digraph passes, LA sets and table, exactly what a one-shot tool
  redoes after every edit — against
- an **incremental update** — :meth:`AnalysisSession.update` splicing
  only the dirty states, relation rows, digraph regions and table rows.

The session memo is disabled for the measurement so every update is a
real splice (with the memo on, flipping back to a previously seen
grammar is a dictionary lookup — faster, but not what we are measuring).

Like :mod:`repro.bench.harness`, wall times are reported for context;
what cross-commit comparisons *assert* on are the machine-independent
``phase.*`` counters of one instrumented splice (states respliced,
relation rows recomputed, table rows refilled, zero fallbacks) plus the
edit recipe itself.  ``--write-baseline``/``--baseline`` mirror the
harness CLI; ``BENCH_incremental.json`` at the repo root is the pinned
snapshot CI diffs against.
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..automaton.lr0 import LR0Automaton
from ..core import instrument
from ..core.lalr import LalrAnalysis
from ..grammar.delta import replace_rhs
from ..grammar.grammar import Grammar
from ..pipeline import AnalysisSession
from ..tables.build import build_lalr_table

#: Format tag for ``BENCH_incremental.json`` snapshots.
BASELINE_FORMAT = 1

#: The default workload: the larger corpus grammars (the small ones
#: finish either way in microseconds and time mostly interpreter noise).
DEFAULT_GRAMMARS = ("mini_c", "toy_java", "algol_like", "mini_pascal_det")


#: Probe budget for :func:`find_splice_edit` — bounds bench startup on
#: grammars whose candidate space is large.
_MAX_PROBES = 2000

#: Counters summed into the per-candidate work proxy.  Together they
#: cover every layer a splice touches (states respliced, relation rows
#: recomputed, walks replayed, table rows refilled) — an edit minimal
#: under this sum is minimal in actual splice latency, without timing
#: anything (the probe scan stays deterministic across machines).
_WORK_COUNTERS = (
    "phase.lr0.states_recomputed",
    "phase.relations.rows_recomputed",
    "phase.relations.walks_rewalked",
    "phase.table.rows_refilled",
)

#: Probe-scan early stop: two dirty states, one relation row, one walk
#: and one table row is the practical floor, so a candidate at or below
#: this total cannot be beaten by enough to matter.
_WORK_FLOOR = 6


def find_splice_edit(grammar: Grammar) -> "Optional[Tuple[int, int, str]]":
    """A ``(production index, rhs position, replacement name)``
    single-terminal substitution the session splices — the candidate
    with the least total splice work found in a deterministic,
    probe-bounded scan — or None when every candidate falls back.

    One probe session is reused across candidates: after a candidate
    update the base grammar is restored through the memo, so each probe
    costs one classify plus (at most) one splice or rebuild.  Work is
    the sum of the ``_WORK_COUNTERS`` deltas of the candidate's splice;
    ranking on dirty states alone is misleading — an edit touching two
    LR(0) states can still flip a lookahead terminal that propagates
    through the whole includes graph and refills a quarter of the table.
    """
    terminals = [t for t in grammar.terminals if t is not grammar.eof]
    session = AnalysisSession(grammar)
    best: "Optional[Tuple[int, int, str]]" = None
    best_work = None
    probes = 0
    with instrument.profile() as collector:
        counters = collector.counters
        for index, production in enumerate(grammar.productions):
            if index == 0:
                continue
            for position, symbol in enumerate(production.rhs):
                if not symbol.is_terminal:
                    continue
                for replacement in terminals:
                    if replacement is symbol:
                        continue
                    probes += 1
                    edited = replace_rhs(
                        grammar,
                        index,
                        tuple(
                            replacement if i == position else s
                            for i, s in enumerate(production.rhs)
                        ),
                    )
                    before = [counters.get(key, 0) for key in _WORK_COUNTERS]
                    report = session.update(edited)
                    work = sum(
                        counters.get(key, 0) - start
                        for key, start in zip(_WORK_COUNTERS, before)
                    )
                    session.update(grammar)
                    if report.strategy == "splice" and (
                        best_work is None or work < best_work
                    ):
                        best = (index, position, replacement.name)
                        best_work = work
                        if best_work <= _WORK_FLOOR:
                            return best
                    if probes >= _MAX_PROBES:
                        return best
    return best


def _median(samples: "List[float]") -> float:
    return statistics.median(samples)


def measure_incremental(
    grammar: Grammar, repeats: int = 7
) -> "Optional[Dict]":
    """One grammar's snapshot row, or None when no edit splices.

    ``full_seconds`` times the from-scratch pipeline on the edited
    grammar; ``incremental_seconds`` times ``session.update`` toggling
    between the base and edited grammars (memo off, so both directions
    are genuine splices).  ``counters`` holds the ``phase.*`` counters of
    one instrumented splice — the deterministic part a baseline diff
    asserts on.
    """
    grammar = grammar.augmented()
    edit = find_splice_edit(grammar)
    if edit is None:
        return None
    index, position, replacement = edit
    production = grammar.productions[index]
    edited = replace_rhs(
        grammar,
        index,
        tuple(
            replacement if i == position else s.name
            for i, s in enumerate(production.rhs)
        ),
    )

    full_samples: "List[float]" = []
    for _ in range(repeats):
        start = time.perf_counter()
        automaton = LR0Automaton(edited)
        analysis = LalrAnalysis(edited, automaton, record_walks=True)
        build_lalr_table(edited, automaton, la_masks=analysis.la_masks)
        full_samples.append(time.perf_counter() - start)

    session = AnalysisSession(grammar, memo_size=0)
    incremental_samples: "List[float]" = []
    dirty_states = total_states = 0
    for step in range(repeats * 2):
        target = edited if step % 2 == 0 else grammar
        start = time.perf_counter()
        report = session.update(target)
        incremental_samples.append(time.perf_counter() - start)
        assert report.strategy == "splice", report.describe()
        dirty_states = max(dirty_states, report.dirty_states)
        total_states = report.total_states

    with instrument.profile() as collector:
        probe = AnalysisSession(grammar, memo_size=0)
        baseline_counters = dict(collector.counters)
        probe.update(edited)
    counters = {
        key: value - baseline_counters.get(key, 0)
        for key, value in sorted(collector.counters.items())
        if key.startswith("phase.")
    }

    full_seconds = _median(full_samples)
    incremental_seconds = _median(incremental_samples)
    return {
        "edit": {
            "production": index,
            "position": position,
            "replacement": replacement,
        },
        "dirty_states": dirty_states,
        "total_states": total_states,
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": full_seconds / incremental_seconds
        if incremental_seconds
        else float("inf"),
        "counters": counters,
    }


def bench_snapshot(
    named_grammars: "Sequence[Tuple[str, Grammar]]", repeats: int = 7
) -> Dict:
    """The machine-readable snapshot for every grammar that splices."""
    grammars: "Dict[str, Dict]" = {}
    for name, grammar in named_grammars:
        entry = measure_incremental(grammar, repeats=repeats)
        if entry is None:
            entry = {"no_splice_edit": True}
        grammars[name] = entry
    return {"format": BASELINE_FORMAT, "grammars": grammars}


def compare_baseline(current: Dict, baseline: Dict) -> "Tuple[List[List], List[str]]":
    """``(rows, drift)`` — display rows plus counter/recipe drift.

    Wall times and the derived speedup are context columns; drift is
    declared only on the deterministic parts (the chosen edit, the dirty
    region size and the ``phase.*`` counters), so the check is stable
    across hardware.
    """
    rows: "List[List]" = []
    drift: "List[str]" = []
    base_grammars = baseline.get("grammars", {})
    for name, entry in current.get("grammars", {}).items():
        base = base_grammars.get(name)
        if base is None:
            drift.append(f"{name}: not present in baseline")
            continue
        if entry.get("no_splice_edit") or base.get("no_splice_edit"):
            if entry.get("no_splice_edit") != base.get("no_splice_edit"):
                drift.append(f"{name}: splice-edit availability changed")
            continue
        rows.append([
            name,
            base["speedup"],
            entry["speedup"],
            entry["dirty_states"],
            entry["total_states"],
        ])
        for key in ("edit", "dirty_states", "total_states"):
            if entry[key] != base[key]:
                drift.append(f"{name}: {key} {base[key]!r} -> {entry[key]!r}")
        for key, base_value in sorted(base.get("counters", {}).items()):
            value = entry["counters"].get(key)
            if value != base_value:
                drift.append(f"{name}: counter {key} {base_value} -> {value}")
    return rows, drift


def main(argv: "Sequence[str] | None" = None) -> int:
    """``python -m repro.bench.incremental`` — edit latency vs rebuild.

    Default report prints one row per grammar.  ``--write-baseline``
    captures ``BENCH_incremental.json``; ``--baseline`` diffs against it,
    exiting 1 on deterministic drift or (with ``--min-speedup``) on a
    speedup below the floor.
    """
    import argparse
    import json

    from .harness import _load_spec

    parser = argparse.ArgumentParser(prog="repro.bench.incremental")
    parser.add_argument("grammars", nargs="*",
                        default=[f"corpus:{name}" for name in DEFAULT_GRAMMARS],
                        help="grammar files or corpus:<name> specs "
                             "(default: the larger corpus grammars)")
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--baseline", default="",
                        help="compare against a snapshot JSON (exit 1 on "
                             "counter/recipe drift)")
    parser.add_argument("--write-baseline", default="",
                        help="write a snapshot JSON instead of reporting")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when any grammar's measured speedup "
                             "falls below this floor (default: no floor)")
    args = parser.parse_args(argv)

    named = [_load_spec(spec) for spec in args.grammars]

    if args.write_baseline:
        snapshot = bench_snapshot(named, repeats=args.repeats)
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write_baseline} ({len(snapshot['grammars'])} grammars)")
        return 0

    snapshot = bench_snapshot(named, repeats=args.repeats)
    header = (f"{'grammar':20s} {'full ms':>10s} {'incr ms':>10s} "
              f"{'speedup':>8s} {'dirty':>12s}")
    print(header)
    too_slow: "List[str]" = []
    for name, entry in snapshot["grammars"].items():
        if entry.get("no_splice_edit"):
            print(f"{name:20s} (no splice-able edit found)")
            continue
        print(f"{name:20s} {entry['full_seconds'] * 1e3:10.3f} "
              f"{entry['incremental_seconds'] * 1e3:10.3f} "
              f"{entry['speedup']:7.1f}x "
              f"{entry['dirty_states']:5d}/{entry['total_states']:<5d}")
        fallback = entry["counters"].get("phase.fallback", 0)
        reuse = entry["counters"].get("phase.reuse", 0)
        if fallback or not reuse:
            too_slow.append(
                f"{name}: phase.reuse={reuse} phase.fallback={fallback}"
            )
        if args.min_speedup and entry["speedup"] < args.min_speedup:
            too_slow.append(
                f"{name}: speedup {entry['speedup']:.1f}x below the "
                f"{args.min_speedup:.1f}x floor"
            )

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        rows, drift = compare_baseline(snapshot, baseline)
        for name, base_speedup, speedup, dirty, total in rows:
            print(f"{name}: baseline {base_speedup:.1f}x, now {speedup:.1f}x "
                  f"({dirty}/{total} states respliced)")
        if drift:
            print("incremental-benchmark drift (splice machinery changed?):")
            for message in drift:
                print(f"  {message}")
            return 1
        print("splice recipes and phase counters match the baseline")

    if too_slow:
        for message in too_slow:
            print(f"FAIL {message}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())

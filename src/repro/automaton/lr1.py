"""The canonical LR(1) automaton (Knuth's construction).

This is the expensive construction that DeRemer & Pennello's algorithm
avoids.  It serves two roles here:

1. **Baseline**: merging same-core LR(1) states yields LALR(1) lookaheads
   ("the conversion method" the paper compares against) — see
   :mod:`repro.baselines.merge_lr1`.
2. **Ground truth**: the canonical-LR(1) parse table decides LR(1)-ness in
   the grammar classifier.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..analysis.first import FirstSets
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .items import Item, Item1, next_symbol


class LR1State:
    """One state of the canonical LR(1) automaton.

    The kernel is stored core-first: ``kernel[core] = frozenset of
    lookaheads`` — equivalent to a set of Item1 but cheaper to merge and
    compare.
    """

    __slots__ = ("state_id", "kernel", "closure", "transitions")

    def __init__(
        self,
        state_id: int,
        kernel: "FrozenSet[Tuple[Item, FrozenSet[Symbol]]]",
        closure: Dict[Item, FrozenSet[Symbol]],
    ):
        self.state_id = state_id
        self.kernel = kernel
        self.closure = closure
        self.transitions: Dict[Symbol, int] = {}

    @property
    def core(self) -> FrozenSet[Item]:
        """The LR(0) core of the kernel (drops lookaheads)."""
        return frozenset(item for item, _ in self.kernel)

    def items(self) -> Iterable[Item1]:
        """All LR(1) items of the closure, flattened."""
        for item, lookaheads in self.closure.items():
            for lookahead in lookaheads:
                yield Item1(item.production, item.dot, lookahead)

    def __repr__(self) -> str:
        return f"LR1State({self.state_id}, kernel={len(self.kernel)} cores)"


class LR1Automaton:
    """Canonical collection of LR(1) item sets for an augmented grammar."""

    def __init__(
        self,
        grammar: Grammar,
        first_sets: "FirstSets | None" = None,
        budget=None,
    ):
        # Deferred to dodge the repro.core <-> repro.automaton cycle.
        from ..core import instrument

        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self.grammar = grammar
        self.first_sets = first_sets or FirstSets(grammar)
        self.states: List[LR1State] = []
        self._kernel_index: Dict[
            FrozenSet[Tuple[Item, FrozenSet[Symbol]]], int
        ] = {}
        self._budget = budget
        if budget is not None:
            budget.enter_phase("lr1")
        with instrument.span("lr1.build"):
            self._build()
        if budget is not None:
            self._budget = None
            budget.publish()
        instrument.count("lr1.states", len(self.states))

    # -- construction ------------------------------------------------------

    def _closure(
        self, kernel: Iterable[Tuple[Item, FrozenSet[Symbol]]]
    ) -> Dict[Item, FrozenSet[Symbol]]:
        grammar = self.grammar
        first = self.first_sets
        lookaheads: Dict[Item, Set[Symbol]] = {}
        worklist: List[Item] = []
        for item, las in kernel:
            lookaheads[item] = set(las)
            worklist.append(item)
        while worklist:
            item = worklist.pop()
            symbol = next_symbol(grammar, item)
            if symbol is None or symbol.is_terminal:
                continue
            production = grammar.productions[item.production]
            tail = production.rhs[item.dot + 1 :]
            spawned = first.first_plus(tail, lookaheads[item])
            for target in grammar.productions_for(symbol):
                fresh = Item(target.index, 0)
                existing = lookaheads.get(fresh)
                if existing is None:
                    lookaheads[fresh] = set(spawned)
                    worklist.append(fresh)
                elif not spawned <= existing:
                    existing.update(spawned)
                    worklist.append(fresh)
        return {item: frozenset(las) for item, las in lookaheads.items()}

    def _intern(self, kernel: "FrozenSet[Tuple[Item, FrozenSet[Symbol]]]") -> int:
        existing = self._kernel_index.get(kernel)
        if existing is not None:
            return existing
        state_id = len(self.states)
        closure = self._closure(sorted(kernel))
        state = LR1State(state_id, kernel, closure)
        self.states.append(state)
        self._kernel_index[kernel] = state_id
        if self._budget is not None:
            self._budget.charge_states(len(self.states))
        return state_id

    def _build(self) -> None:
        eof = self.grammar.eof
        # The start item's own lookahead never matters (production 0 ends in
        # $end already); we seed with $end for definiteness.
        start_kernel = frozenset(((Item(0, 0), frozenset((eof,))),))
        self._intern(start_kernel)
        worklist = [0]
        while worklist:
            state = self.states[worklist.pop()]
            by_symbol: Dict[Symbol, Dict[Item, Set[Symbol]]] = {}
            for item, las in state.closure.items():
                symbol = next_symbol(self.grammar, item)
                if symbol is None:
                    continue
                advanced = item.advanced()
                bucket = by_symbol.setdefault(symbol, {})
                bucket.setdefault(advanced, set()).update(las)
            for symbol in sorted(by_symbol, key=lambda s: s.index):
                kernel = frozenset(
                    (item, frozenset(las)) for item, las in by_symbol[symbol].items()
                )
                known = kernel in self._kernel_index
                successor = self._intern(kernel)
                state.transitions[symbol] = successor
                if not known:
                    worklist.append(successor)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.states)

    def goto(self, state_id: int, symbol: Symbol) -> Optional[int]:
        """Successor of *state_id* on *symbol*, or None."""
        return self.states[state_id].transitions.get(symbol)

    def reductions(self, state_id: int) -> List[Tuple[int, FrozenSet[Symbol]]]:
        """(production index, lookahead set) for each final item of a state."""
        state = self.states[state_id]
        result = []
        for item, las in state.closure.items():
            if next_symbol(self.grammar, item) is None:
                result.append((item.production, las))
        return result

    def stats(self) -> Dict[str, int]:
        """Size statistics (the Table 1/3 inputs for the CLR side)."""
        return {
            "states": len(self.states),
            "kernel_cores": sum(len(s.kernel) for s in self.states),
            "closure_items": sum(
                len(las) for s in self.states for las in s.closure.values()
            ),
            "transitions": sum(len(s.transitions) for s in self.states),
        }

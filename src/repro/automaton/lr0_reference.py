"""The eager, frozenset-based LR(0) builder, retained as a test oracle.

This is the construction :class:`repro.automaton.lr0.LR0Automaton` used
before the kernel-centric rewrite: items are :class:`Item` tuples, kernels
are frozensets, every state's full closure is materialized eagerly by the
classic item-level worklist algorithm, and transitions are Symbol-keyed
dicts.  It is deliberately simple and slow — its job is to define the
*meaning* the optimized builder must match bit for bit: the equivalence
tests compare state numbering, kernels, closure order, transition maps
and reduction order across the whole grammar corpus and hundreds of
random grammars.

Nothing in the pipeline imports this module; only tests (and anyone
debugging a suspected automaton divergence) should.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .items import Item


class ReferenceState:
    """One state of the reference automaton (plain containers only)."""

    __slots__ = ("state_id", "kernel", "closure", "transitions", "reductions")

    def __init__(
        self,
        state_id: int,
        kernel: FrozenSet[Item],
        closure: Tuple[Item, ...],
        reductions: Tuple[Item, ...],
    ):
        self.state_id = state_id
        self.kernel = kernel
        self.closure = closure
        self.transitions: Dict[Symbol, int] = {}
        self.reductions = reductions


class ReferenceLR0Automaton:
    """The pre-optimization LR(0) construction, verbatim."""

    def __init__(self, grammar: Grammar, budget=None):
        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self.grammar = grammar
        self.ids = grammar.ids
        self.states: List[ReferenceState] = []
        self._kernel_index: Dict[FrozenSet[Item], int] = {}
        self._budget = budget
        if budget is not None:
            budget.enter_phase("lr0.reference")
        self._build()
        self._budget = None

    def __len__(self) -> int:
        return len(self.states)

    def _closure(self, kernel: Iterable[Item]) -> Tuple[Item, ...]:
        grammar = self.grammar
        productions = grammar.productions
        num_terminals = self.ids.num_terminals
        items = list(kernel)
        seen = set(items)
        added = bytearray(self.ids.num_nonterminals)
        i = 0
        while i < len(items):
            item = items[i]
            i += 1
            rhs_sids = productions[item.production].rhs_sids
            if item.dot >= len(rhs_sids):
                continue
            sid = rhs_sids[item.dot]
            if sid < num_terminals:
                continue
            nt_id = sid - num_terminals
            if added[nt_id]:
                continue
            added[nt_id] = 1
            for production in grammar.productions_for_ntid(nt_id):
                fresh = Item(production.index, 0)
                if fresh not in seen:
                    seen.add(fresh)
                    items.append(fresh)
        return tuple(items)

    def _intern(self, kernel: FrozenSet[Item]) -> int:
        existing = self._kernel_index.get(kernel)
        if existing is not None:
            return existing
        state_id = len(self.states)
        closure = self._closure(sorted(kernel))
        productions = self.grammar.productions
        reductions = tuple(
            item
            for item in closure
            if item.dot >= len(productions[item.production].rhs_sids)
        )
        self.states.append(ReferenceState(state_id, kernel, closure, reductions))
        self._kernel_index[kernel] = state_id
        if self._budget is not None:
            self._budget.charge_states(len(self.states))
        return state_id

    def _build(self) -> None:
        productions = self.grammar.productions
        symbol_of = self.ids.by_sid
        order = self.ids.declaration_order()
        self._intern(frozenset((Item(0, 0),)))
        worklist = [0]
        while worklist:
            state = self.states[worklist.pop()]
            by_sid: Dict[int, List[Item]] = {}
            for item in state.closure:
                rhs_sids = productions[item.production].rhs_sids
                if item.dot < len(rhs_sids):
                    by_sid.setdefault(rhs_sids[item.dot], []).append(item.advanced())
            for sid in sorted(by_sid, key=order.__getitem__):
                kernel = frozenset(by_sid[sid])
                known = kernel in self._kernel_index
                successor = self._intern(kernel)
                state.transitions[symbol_of[sid]] = successor
                if not known:
                    worklist.append(successor)

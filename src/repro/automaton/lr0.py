"""The LR(0) automaton (canonical collection of LR(0) item sets).

This is the substrate the DeRemer–Pennello algorithm runs on: all four of
its relations (DR, reads, includes, lookback) are defined purely in terms
of this automaton's states and transitions plus grammar nullability.

States are identified by dense integer ids; state 0 is the start state
(kernel ``{S' -> . S $end}``).

**Kernel-centric construction.**  States are built and interned from
their *kernels only*; full closures are never materialized during
construction.  Three ideas make that possible:

- items are packed ints ``production_index << dot_shift | dot``, so a
  kernel is a sorted int tuple (cheap to hash, orders exactly like the
  ``(production, dot)`` tuples it replaces) and advancing the dot is
  ``code + 1``;
- the closure of ``{A -> . gamma}`` items is state-independent, so one
  grammar-global pass precomputes, per nonterminal: which nonterminals
  its productions expose at dot 0 (``_nt_first_nts``), its epsilon
  reductions (``_nt_epsilon_items``), and the ``(sid, advanced-code)``
  shift contributions of its productions (``_nt_shift_entries``);
- per state, closure then collapses to a breadth-first sweep over
  *nonterminal ids* seeded by the kernel's dot symbols — successor
  buckets and reductions are assembled from the precomputed per-
  nonterminal entries without creating a single derived :class:`Item`.

The sweep visits nonterminals in exactly the order the classic item-level
worklist closure first expands them, so state numbering, closure order,
reduction order and every dump stay **bit-identical** to the eager
builder this replaced (retained as
:mod:`repro.automaton.lr0_reference` for differential testing).

Transitions are stored on the **integer core**: each state keeps a flat
``array('i')`` row indexed by dense symbol ID (-1 = no transition) plus
the ordered list of outgoing IDs, so the hot paths (relation
construction, table fill) never hash a :class:`Symbol`.  The legacy
``state.kernel`` / ``state.closure`` / ``state.transitions`` attributes
remain available as lazily built views for rendering, diagnostics and
the kernel-merging baselines.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..grammar.errors import GrammarValidationError
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol, SymbolIds
from .items import Item, format_item


class LR0State:
    """One state of the LR(0) automaton.

    Attributes:
        state_id: Dense integer id.
        kernel_codes: The kernel items as a sorted tuple of packed ints
            (``production << dot_shift | dot``) — the interning key.
        derived_nts: Nonterminal ids whose productions the closure adds,
            in expansion order (``array('i')``).
        targets: Flat transition row, ``targets[sid]`` = successor state
            id or -1; indexed by dense symbol ID.
        out_sids: The symbol IDs with outgoing transitions, in the
            deterministic (declaration) order successors were created.
        reductions: Final items, i.e. productions this state may reduce by.

    ``kernel`` (a ``frozenset`` of :class:`Item`) and ``closure`` (the
    ordered item tuple) are lazy views decoded from the packed core on
    first access.
    """

    __slots__ = (
        "state_id",
        "kernel_codes",
        "derived_nts",
        "targets",
        "out_sids",
        "reductions",
        "_automaton",
        "_transition_view",
        "_kernel_view",
        "_closure_view",
    )

    def __init__(
        self,
        state_id: int,
        kernel_codes: Tuple[int, ...],
        derived_nts: "array",
        reductions: Tuple[Item, ...],
        automaton: "LR0Automaton",
    ):
        self.state_id = state_id
        self.kernel_codes = kernel_codes
        self.derived_nts = derived_nts
        self.targets: "array" = array("i", [-1]) * automaton.ids.num_symbols
        self.out_sids: "array" = array("i")
        self.reductions = reductions
        self._automaton = automaton
        self._transition_view: "Optional[Dict[Symbol, int]]" = None
        self._kernel_view: "Optional[FrozenSet[Item]]" = None
        self._closure_view: "Optional[Tuple[Item, ...]]" = None

    @property
    def kernel(self) -> FrozenSet[Item]:
        """Kernel as a frozenset of :class:`Item` (legacy/boundary API)."""
        view = self._kernel_view
        if view is None:
            shift = self._automaton._dot_shift
            mask = self._automaton._dot_mask
            view = frozenset(Item(code >> shift, code & mask) for code in self.kernel_codes)
            self._kernel_view = view
        return view

    @property
    def closure(self) -> Tuple[Item, ...]:
        """Kernel plus derived items, in the classic worklist-closure
        order (kernel items sorted, then each expanded nonterminal's
        productions in declaration order)."""
        view = self._closure_view
        if view is None:
            automaton = self._automaton
            shift, mask = automaton._dot_shift, automaton._dot_mask
            items = [Item(code >> shift, code & mask) for code in self.kernel_codes]
            productions_for_ntid = automaton.grammar.productions_for_ntid
            for nt_id in self.derived_nts:
                items.extend(
                    Item(production.index, 0)
                    for production in productions_for_ntid(nt_id)
                )
            view = tuple(items)
            self._closure_view = view
        return view

    @property
    def transitions(self) -> Dict[Symbol, int]:
        """Symbol-keyed transition view (legacy/boundary API).

        Built lazily from the ID row; iteration order matches the
        deterministic successor-creation order, exactly as the eager
        dict did before the integer-core refactor.
        """
        view = self._transition_view
        if view is None:
            targets, symbol_of = self.targets, self._automaton.ids.by_sid
            view = {symbol_of[sid]: targets[sid] for sid in self.out_sids}
            self._transition_view = view
        return view

    def __repr__(self) -> str:
        return f"LR0State({self.state_id}, kernel={len(self.kernel_codes)} items)"


class LR0Automaton:
    """Canonical LR(0) collection for an augmented grammar."""

    def __init__(self, grammar: Grammar, budget=None):
        # Imported here, not at module level: repro.core.lalr imports this
        # module, so a top-level import of repro.core would be circular.
        from ..core import instrument

        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self.grammar = grammar
        self.ids: SymbolIds = grammar.ids
        self.states: List[LR0State] = []
        self._kernel_index: Dict[Tuple[int, ...], int] = {}
        # predecessors[q][sid] = sorted tuple of states p with
        # goto(p, symbol(sid)) = q.  Built lazily: only lookback-style
        # backward walks and a few diagnostics ever need it.
        self._predecessors: "Optional[Dict[int, Dict[int, Tuple[int, ...]]]]" = None
        # Held only for the duration of construction; cleared afterwards
        # so automata never pin a request's Budget alive.
        self._budget = budget
        if budget is not None:
            budget.enter_phase("lr0")
        with instrument.span("lr0.build"):
            self._prepare_closure_tables()
            self._build()
        if budget is not None:
            self._budget = None
            budget.publish()
        if instrument.enabled():
            instrument.count("lr0.states", len(self.states))
            instrument.count(
                "lr0.transitions", sum(len(s.out_sids) for s in self.states)
            )

    # -- construction ------------------------------------------------------

    def _prepare_closure_tables(self) -> None:
        """The grammar-global, state-independent closure tables.

        One pass over the productions fixes the item packing (the dot
        field must hold the longest right-hand side) and fills three
        per-nonterminal tables:

        - ``_nt_first_nts[nt]``: nonterminal ids at dot 0 of ``nt``'s
          productions, in declaration order — the closure's one-step
          expansion frontier;
        - ``_nt_epsilon_items[nt]``: the final ``A -> .`` items ``nt``
          contributes to a state's reductions;
        - ``_nt_shift_entries[nt]``: ``(sid, packed Item(p, 1))`` per
          non-empty production — the successor-bucket contributions of
          ``nt``'s derived items.

        The tables depend only on the grammar, so they are cached on the
        grammar instance — the incremental splice prepares them for every
        edit, and grammars are immutable after construction.
        """
        grammar = self.grammar
        cached = grammar.__dict__.get("_closure_tables")
        if cached is not None:
            (
                self._dot_shift,
                self._dot_mask,
                self._prod_rhs_sids,
                self._nt_first_nts,
                self._nt_epsilon_items,
                self._nt_shift_entries,
            ) = cached
            return
        productions = grammar.productions
        max_rhs = max((len(p.rhs_sids) for p in productions), default=0)
        self._dot_shift = shift = max(1, max_rhs.bit_length())
        self._dot_mask = (1 << shift) - 1
        self._prod_rhs_sids = [p.rhs_sids for p in productions]
        num_terminals = self.ids.num_terminals
        first_nts: List[Tuple[int, ...]] = []
        epsilon_items: List[Tuple[Item, ...]] = []
        shift_entries: List[Tuple[Tuple[int, int], ...]] = []
        for nt_id in range(self.ids.num_nonterminals):
            exposed: List[int] = []
            finals: List[Item] = []
            entries: List[Tuple[int, int]] = []
            for production in grammar.productions_for_ntid(nt_id):
                rhs_sids = production.rhs_sids
                if rhs_sids:
                    first_sid = rhs_sids[0]
                    entries.append((first_sid, (production.index << shift) | 1))
                    if first_sid >= num_terminals:
                        exposed.append(first_sid - num_terminals)
                else:
                    finals.append(Item(production.index, 0))
            first_nts.append(tuple(exposed))
            epsilon_items.append(tuple(finals))
            shift_entries.append(tuple(entries))
        self._nt_first_nts = first_nts
        self._nt_epsilon_items = epsilon_items
        self._nt_shift_entries = shift_entries
        grammar._closure_tables = (
            self._dot_shift,
            self._dot_mask,
            self._prod_rhs_sids,
            first_nts,
            epsilon_items,
            shift_entries,
        )

    def _intern(
        self, kernel_codes: Tuple[int, ...]
    ) -> "Tuple[int, Optional[List[Tuple[int, int]]]]":
        """Intern a kernel (sorted packed-int tuple); returns the state id
        plus, for a *new* state, its kernel shift entries (``None`` for a
        known state — the caller's "already on the worklist" signal)."""
        existing = self._kernel_index.get(kernel_codes)
        if existing is not None:
            return existing, None
        state_id = len(self.states)
        shift, mask = self._dot_shift, self._dot_mask
        rhs_sids_of = self._prod_rhs_sids
        num_terminals = self.ids.num_terminals
        kernel_shifts: List[Tuple[int, int]] = []
        reductions: List[Item] = []
        # Expansion frontier, in kernel scan order; duplicates are fine —
        # the sweep below skips already-expanded nonterminals, exactly
        # like the item-level closure's `added` check.
        frontier: List[int] = []
        for code in kernel_codes:
            production, dot = code >> shift, code & mask
            rhs_sids = rhs_sids_of[production]
            if dot < len(rhs_sids):
                sid = rhs_sids[dot]
                kernel_shifts.append((sid, code + 1))
                if sid >= num_terminals:
                    frontier.append(sid - num_terminals)
            else:
                reductions.append(Item(production, dot))
        added = bytearray(self.ids.num_nonterminals)
        derived: "array" = array("i")
        first_nts = self._nt_first_nts
        i = 0
        while i < len(frontier):
            nt_id = frontier[i]
            i += 1
            if added[nt_id]:
                continue
            added[nt_id] = 1
            derived.append(nt_id)
            frontier.extend(first_nts[nt_id])
        epsilon_items = self._nt_epsilon_items
        for nt_id in derived:
            reductions.extend(epsilon_items[nt_id])
        state = LR0State(state_id, kernel_codes, derived, tuple(reductions), self)
        self.states.append(state)
        self._kernel_index[kernel_codes] = state_id
        if self._budget is not None:
            self._budget.charge_states(len(self.states))
        return state_id, kernel_shifts

    def _build(self) -> None:
        # order[sid] = declaration index; successors are created in
        # declaration order so state numbering is identical to the
        # Symbol-keyed implementation this replaced.
        order = self.ids.declaration_order()
        shift_entries = self._nt_shift_entries
        start_id, start_shifts = self._intern((0,))  # Item(0, 0) packs to 0
        worklist: List[Tuple[int, List[Tuple[int, int]]]] = [(start_id, start_shifts)]
        while worklist:
            state_id, kernel_shifts = worklist.pop()
            state = self.states[state_id]
            by_sid: Dict[int, List[int]] = {}
            for sid, code in kernel_shifts:
                bucket = by_sid.get(sid)
                if bucket is None:
                    by_sid[sid] = [code]
                else:
                    bucket.append(code)
            for nt_id in state.derived_nts:
                for sid, code in shift_entries[nt_id]:
                    bucket = by_sid.get(sid)
                    if bucket is None:
                        by_sid[sid] = [code]
                    else:
                        bucket.append(code)
            targets, out_sids = state.targets, state.out_sids
            # Deterministic successor order: symbol table order.
            for sid in sorted(by_sid, key=order.__getitem__):
                codes = by_sid[sid]
                codes.sort()
                successor, successor_shifts = self._intern(tuple(codes))
                targets[sid] = successor
                out_sids.append(sid)
                if successor_shifts is not None:
                    worklist.append((successor, successor_shifts))
        # worklist order above is LIFO which still enumerates everything;
        # ids are assigned at intern time so numbering is deterministic.

    def _predecessor_index(self) -> Dict[int, Dict[int, Tuple[int, ...]]]:
        index = self._predecessors
        if index is None:
            collect: Dict[int, Dict[int, List[int]]] = {}
            for state in self.states:
                targets = state.targets
                for sid in state.out_sids:
                    collect.setdefault(targets[sid], {}).setdefault(sid, []).append(
                        state.state_id
                    )
            index = {
                q: {sid: tuple(sorted(ps)) for sid, ps in per_sid.items()}
                for q, per_sid in collect.items()
            }
            self._predecessors = index
        return index

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.states)

    def goto(self, state_id: int, symbol: Symbol) -> Optional[int]:
        """Successor of *state_id* on *symbol*, or None."""
        sid = self.ids.sid_or_none(symbol)
        if sid is None:
            return None
        target = self.states[state_id].targets[sid]
        return target if target >= 0 else None

    def goto_sid(self, state_id: int, sid: int) -> int:
        """Successor of *state_id* on the symbol with dense ID *sid*, or
        -1 — the integer-core fast path (no hashing, no None boxing)."""
        return self.states[state_id].targets[sid]

    def goto_sequence(self, state_id: int, symbols: Sequence[Symbol]) -> Optional[int]:
        """Walk the goto function along *symbols*; None if the path dies.

        Symbols are converted to dense IDs once up front; the walk itself
        reads flat target rows without hashing anything.
        """
        try:
            sids = self.ids.sids(symbols)
        except KeyError:
            return None
        return self.goto_sequence_sids(state_id, sids)

    def goto_sequence_sids(self, state_id: int, sids: Iterable[int]) -> Optional[int]:
        """:meth:`goto_sequence` on dense symbol IDs (the integer core)."""
        states = self.states
        current = state_id
        for sid in sids:
            current = states[current].targets[sid]
            if current < 0:
                return None
        return current

    def predecessors(self, state_id: int, symbol: Symbol) -> Tuple[int, ...]:
        """All states p with ``goto(p, symbol) == state_id``."""
        sid = self.ids.sid_or_none(symbol)
        if sid is None:
            return ()
        return self._predecessor_index().get(state_id, {}).get(sid, ())

    def predecessors_along(
        self, state_id: int, symbols: Sequence[Symbol]
    ) -> Tuple[int, ...]:
        """All states p with ``p --symbols--> state_id`` (walk backwards).

        This implements the ``p --omega--> q`` spelling lookup used by the
        `includes` and `lookback` relations without any forward search.
        The spelling is converted to dense IDs once; the backward walk
        then touches only the int-keyed predecessor index.
        """
        try:
            sids = self.ids.sids(symbols)
        except KeyError:
            # A symbol outside this grammar's layout has no transitions,
            # so no path can spell the sequence.
            return ()
        index = self._predecessor_index()
        empty: Dict[int, Tuple[int, ...]] = {}
        frontier = [state_id]
        for sid in reversed(sids):
            next_frontier: List[int] = []
            for q in frontier:
                next_frontier.extend(index.get(q, empty).get(sid, ()))
            if not next_frontier:
                return ()
            frontier = next_frontier
        return tuple(sorted(set(frontier)))

    @property
    def nonterminal_transitions(self) -> List[Tuple[int, Symbol]]:
        """All (state, nonterminal) transition pairs — the node set of the
        DeRemer–Pennello relations (Symbol-level boundary view)."""
        num_terminals = self.ids.num_terminals
        symbol_of = self.ids.by_sid
        pairs: List[Tuple[int, Symbol]] = []
        for state in self.states:
            for sid in state.out_sids:
                if sid >= num_terminals:
                    pairs.append((state.state_id, symbol_of[sid]))
        return pairs

    @property
    def nonterminal_transition_ids(self) -> "array":
        """The same transition set as packed ints
        ``state_id * num_nonterminals + nt_id``, in the same deterministic
        order — the node encoding the relations and Digraph passes use."""
        num_terminals = self.ids.num_terminals
        num_nonterminals = self.ids.num_nonterminals
        packed: "array" = array("q")
        for state in self.states:
            base = state.state_id * num_nonterminals
            for sid in state.out_sids:
                if sid >= num_terminals:
                    packed.append(base + sid - num_terminals)
        return packed

    @property
    def accept_state(self) -> int:
        """The state reached after shifting ``S $end`` from the start."""
        p0 = self.grammar.productions[0]
        state = self.goto_sequence_sids(0, p0.rhs_sids)
        if state is None:  # pragma: no cover - impossible on augmented grammars
            raise GrammarValidationError("automaton lacks an accept state")
        return state

    def format_state(self, state_id: int, kernel_only: bool = False) -> str:
        """Multi-line human-readable dump of one state."""
        state = self.states[state_id]
        items = sorted(state.kernel) if kernel_only else list(state.closure)
        lines = [f"state {state_id}"]
        lines.extend(f"  {format_item(self.grammar, item)}" for item in items)
        for symbol, target in sorted(
            state.transitions.items(), key=lambda kv: kv[0].index
        ):
            lines.append(f"  {symbol.name} => state {target}")
        return "\n".join(lines)

    def stats(self) -> Dict[str, int]:
        """Size statistics for the benchmark harness."""
        productions_per_nt = [
            len(self.grammar.productions_for_ntid(nt_id))
            for nt_id in range(self.ids.num_nonterminals)
        ]
        return {
            "states": len(self.states),
            "kernel_items": sum(len(s.kernel_codes) for s in self.states),
            "closure_items": sum(
                len(s.kernel_codes) + sum(productions_per_nt[nt] for nt in s.derived_nts)
                for s in self.states
            ),
            "transitions": sum(len(s.out_sids) for s in self.states),
            "nonterminal_transitions": len(self.nonterminal_transitions),
            "reductions": sum(len(s.reductions) for s in self.states),
        }

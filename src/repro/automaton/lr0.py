"""The LR(0) automaton (canonical collection of LR(0) item sets).

This is the substrate the DeRemer–Pennello algorithm runs on: all four of
its relations (DR, reads, includes, lookback) are defined purely in terms
of this automaton's states and transitions plus grammar nullability.

States are identified by dense integer ids; state 0 is the start state
(kernel ``{S' -> . S $end}``).  Kernels are deduplicated by frozenset
identity, so construction is the standard worklist algorithm and runs in
time proportional to the total number of items across states.

Transitions are stored on the **integer core**: each state keeps a flat
``array('i')`` row indexed by dense symbol ID (-1 = no transition) plus
the ordered list of outgoing IDs, so the hot paths (relation
construction, table fill) never hash a :class:`Symbol`.  The legacy
``state.transitions`` dict is still available as a lazily built view for
rendering and diagnostics.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..grammar.errors import GrammarValidationError
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol, SymbolIds
from .items import Item, format_item


class LR0State:
    """One state of the LR(0) automaton.

    Attributes:
        state_id: Dense integer id.
        kernel: The kernel items (start item or items with dot > 0).
        closure: Kernel plus all derived ``B -> . gamma`` items.
        targets: Flat transition row, ``targets[sid]`` = successor state
            id or -1; indexed by dense symbol ID.
        out_sids: The symbol IDs with outgoing transitions, in the
            deterministic (declaration) order successors were created.
        reductions: Final items, i.e. productions this state may reduce by.
    """

    __slots__ = (
        "state_id",
        "kernel",
        "closure",
        "targets",
        "out_sids",
        "reductions",
        "_ids",
        "_transition_view",
    )

    def __init__(
        self,
        state_id: int,
        kernel: FrozenSet[Item],
        closure: Tuple[Item, ...],
        reductions: Tuple[Item, ...],
        ids: SymbolIds,
    ):
        self.state_id = state_id
        self.kernel = kernel
        self.closure = closure
        self.targets: "array" = array("i", [-1]) * ids.num_symbols
        self.out_sids: "array" = array("i")
        self.reductions = reductions
        self._ids = ids
        self._transition_view: "Optional[Dict[Symbol, int]]" = None

    @property
    def transitions(self) -> Dict[Symbol, int]:
        """Symbol-keyed transition view (legacy/boundary API).

        Built lazily from the ID row; iteration order matches the
        deterministic successor-creation order, exactly as the eager
        dict did before the integer-core refactor.
        """
        view = self._transition_view
        if view is None:
            targets, symbol_of = self.targets, self._ids.by_sid
            view = {symbol_of[sid]: targets[sid] for sid in self.out_sids}
            self._transition_view = view
        return view

    def __repr__(self) -> str:
        return f"LR0State({self.state_id}, kernel={len(self.kernel)} items)"


class LR0Automaton:
    """Canonical LR(0) collection for an augmented grammar."""

    def __init__(self, grammar: Grammar):
        # Imported here, not at module level: repro.core.lalr imports this
        # module, so a top-level import of repro.core would be circular.
        from ..core import instrument

        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self.grammar = grammar
        self.ids: SymbolIds = grammar.ids
        self.states: List[LR0State] = []
        self._kernel_index: Dict[FrozenSet[Item], int] = {}
        with instrument.span("lr0.build"):
            self._build()
            # predecessors[q][sid] = sorted tuple of states p with
            # goto(p, symbol(sid)) = q.
            self._predecessors: Dict[int, Dict[int, Tuple[int, ...]]] = {}
            self._index_predecessors()
        if instrument.enabled():
            instrument.count("lr0.states", len(self.states))
            instrument.count(
                "lr0.transitions", sum(len(s.out_sids) for s in self.states)
            )

    # -- construction ------------------------------------------------------

    def _closure(self, kernel: Iterable[Item]) -> Tuple[Item, ...]:
        grammar = self.grammar
        productions = grammar.productions
        num_terminals = self.ids.num_terminals
        items = list(kernel)
        seen = set(items)
        added = bytearray(self.ids.num_nonterminals)
        i = 0
        while i < len(items):
            item = items[i]
            i += 1
            rhs_sids = productions[item.production].rhs_sids
            if item.dot >= len(rhs_sids):
                continue
            sid = rhs_sids[item.dot]
            if sid < num_terminals:
                continue
            nt_id = sid - num_terminals
            if added[nt_id]:
                continue
            added[nt_id] = 1
            for production in grammar.productions_for_ntid(nt_id):
                fresh = Item(production.index, 0)
                if fresh not in seen:
                    seen.add(fresh)
                    items.append(fresh)
        return tuple(items)

    def _intern(self, kernel: FrozenSet[Item]) -> int:
        existing = self._kernel_index.get(kernel)
        if existing is not None:
            return existing
        state_id = len(self.states)
        closure = self._closure(sorted(kernel))
        productions = self.grammar.productions
        reductions = tuple(
            item
            for item in closure
            if item.dot >= len(productions[item.production].rhs_sids)
        )
        state = LR0State(state_id, kernel, closure, reductions, self.ids)
        self.states.append(state)
        self._kernel_index[kernel] = state_id
        return state_id

    def _build(self) -> None:
        productions = self.grammar.productions
        # order[sid] = declaration index; successors are created in
        # declaration order so state numbering is identical to the
        # Symbol-keyed implementation this replaced.
        order = self.ids.declaration_order()
        start_kernel = frozenset((Item(0, 0),))
        self._intern(start_kernel)
        worklist = [0]
        while worklist:
            state = self.states[worklist.pop()]
            by_sid: Dict[int, List[Item]] = {}
            for item in state.closure:
                rhs_sids = productions[item.production].rhs_sids
                if item.dot < len(rhs_sids):
                    by_sid.setdefault(rhs_sids[item.dot], []).append(item.advanced())
            # Deterministic successor order: symbol table order.
            for sid in sorted(by_sid, key=order.__getitem__):
                kernel = frozenset(by_sid[sid])
                known = kernel in self._kernel_index
                successor = self._intern(kernel)
                state.targets[sid] = successor
                state.out_sids.append(sid)
                if not known:
                    worklist.append(successor)
        # worklist order above is LIFO which still enumerates everything;
        # ids are assigned at intern time so numbering is deterministic.

    def _index_predecessors(self) -> None:
        collect: Dict[int, Dict[int, List[int]]] = {}
        for state in self.states:
            targets = state.targets
            for sid in state.out_sids:
                collect.setdefault(targets[sid], {}).setdefault(sid, []).append(
                    state.state_id
                )
        self._predecessors = {
            q: {sid: tuple(sorted(ps)) for sid, ps in per_sid.items()}
            for q, per_sid in collect.items()
        }

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.states)

    def goto(self, state_id: int, symbol: Symbol) -> Optional[int]:
        """Successor of *state_id* on *symbol*, or None."""
        sid = self.ids.sid_or_none(symbol)
        if sid is None:
            return None
        target = self.states[state_id].targets[sid]
        return target if target >= 0 else None

    def goto_sid(self, state_id: int, sid: int) -> int:
        """Successor of *state_id* on the symbol with dense ID *sid*, or
        -1 — the integer-core fast path (no hashing, no None boxing)."""
        return self.states[state_id].targets[sid]

    def goto_sequence(self, state_id: int, symbols: Sequence[Symbol]) -> Optional[int]:
        """Walk the goto function along *symbols*; None if the path dies."""
        current: Optional[int] = state_id
        for symbol in symbols:
            if current is None:
                return None
            current = self.goto(current, symbol)
        return current

    def predecessors(self, state_id: int, symbol: Symbol) -> Tuple[int, ...]:
        """All states p with ``goto(p, symbol) == state_id``."""
        sid = self.ids.sid_or_none(symbol)
        if sid is None:
            return ()
        return self._predecessors.get(state_id, {}).get(sid, ())

    def predecessors_along(
        self, state_id: int, symbols: Sequence[Symbol]
    ) -> Tuple[int, ...]:
        """All states p with ``p --symbols--> state_id`` (walk backwards).

        This implements the ``p --omega--> q`` spelling lookup used by the
        `includes` and `lookback` relations without any forward search.
        """
        frontier = [state_id]
        for symbol in reversed(symbols):
            next_frontier: List[int] = []
            for q in frontier:
                next_frontier.extend(self.predecessors(q, symbol))
            if not next_frontier:
                return ()
            frontier = next_frontier
        return tuple(sorted(set(frontier)))

    @property
    def nonterminal_transitions(self) -> List[Tuple[int, Symbol]]:
        """All (state, nonterminal) transition pairs — the node set of the
        DeRemer–Pennello relations (Symbol-level boundary view)."""
        num_terminals = self.ids.num_terminals
        symbol_of = self.ids.by_sid
        pairs: List[Tuple[int, Symbol]] = []
        for state in self.states:
            for sid in state.out_sids:
                if sid >= num_terminals:
                    pairs.append((state.state_id, symbol_of[sid]))
        return pairs

    @property
    def nonterminal_transition_ids(self) -> "array":
        """The same transition set as packed ints
        ``state_id * num_nonterminals + nt_id``, in the same deterministic
        order — the node encoding the relations and Digraph passes use."""
        num_terminals = self.ids.num_terminals
        num_nonterminals = self.ids.num_nonterminals
        packed: "array" = array("q")
        for state in self.states:
            base = state.state_id * num_nonterminals
            for sid in state.out_sids:
                if sid >= num_terminals:
                    packed.append(base + sid - num_terminals)
        return packed

    @property
    def accept_state(self) -> int:
        """The state reached after shifting ``S $end`` from the start."""
        p0 = self.grammar.productions[0]
        state = self.goto_sequence(0, p0.rhs)
        if state is None:  # pragma: no cover - impossible on augmented grammars
            raise GrammarValidationError("automaton lacks an accept state")
        return state

    def format_state(self, state_id: int, kernel_only: bool = False) -> str:
        """Multi-line human-readable dump of one state."""
        state = self.states[state_id]
        items = sorted(state.kernel) if kernel_only else list(state.closure)
        lines = [f"state {state_id}"]
        lines.extend(f"  {format_item(self.grammar, item)}" for item in items)
        for symbol, target in sorted(
            state.transitions.items(), key=lambda kv: kv[0].index
        ):
            lines.append(f"  {symbol.name} => state {target}")
        return "\n".join(lines)

    def stats(self) -> Dict[str, int]:
        """Size statistics for the benchmark harness."""
        return {
            "states": len(self.states),
            "kernel_items": sum(len(s.kernel) for s in self.states),
            "closure_items": sum(len(s.closure) for s in self.states),
            "transitions": sum(len(s.out_sids) for s in self.states),
            "nonterminal_transitions": len(self.nonterminal_transitions),
            "reductions": sum(len(s.reductions) for s in self.states),
        }

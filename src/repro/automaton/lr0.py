"""The LR(0) automaton (canonical collection of LR(0) item sets).

This is the substrate the DeRemer–Pennello algorithm runs on: all four of
its relations (DR, reads, includes, lookback) are defined purely in terms
of this automaton's states and transitions plus grammar nullability.

States are identified by dense integer ids; state 0 is the start state
(kernel ``{S' -> . S $end}``).  Kernels are deduplicated by frozenset
identity, so construction is the standard worklist algorithm and runs in
time proportional to the total number of items across states.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..grammar.errors import GrammarValidationError
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .items import Item, format_item, next_symbol


class LR0State:
    """One state of the LR(0) automaton.

    Attributes:
        state_id: Dense integer id.
        kernel: The kernel items (start item or items with dot > 0).
        closure: Kernel plus all derived ``B -> . gamma`` items.
        transitions: Outgoing edges, symbol -> successor state id.
        reductions: Final items, i.e. productions this state may reduce by.
    """

    __slots__ = ("state_id", "kernel", "closure", "transitions", "reductions")

    def __init__(
        self,
        state_id: int,
        kernel: FrozenSet[Item],
        closure: Tuple[Item, ...],
        reductions: Tuple[Item, ...],
    ):
        self.state_id = state_id
        self.kernel = kernel
        self.closure = closure
        self.transitions: Dict[Symbol, int] = {}
        self.reductions = reductions

    def __repr__(self) -> str:
        return f"LR0State({self.state_id}, kernel={len(self.kernel)} items)"


class LR0Automaton:
    """Canonical LR(0) collection for an augmented grammar."""

    def __init__(self, grammar: Grammar):
        # Imported here, not at module level: repro.core.lalr imports this
        # module, so a top-level import of repro.core would be circular.
        from ..core import instrument

        if not grammar.is_augmented:
            grammar = grammar.augmented()
        self.grammar = grammar
        self.states: List[LR0State] = []
        self._kernel_index: Dict[FrozenSet[Item], int] = {}
        with instrument.span("lr0.build"):
            self._build()
            # predecessors[q][X] = sorted tuple of states p with goto(p, X) = q.
            self._predecessors: Dict[int, Dict[Symbol, Tuple[int, ...]]] = {}
            self._index_predecessors()
        if instrument.enabled():
            instrument.count("lr0.states", len(self.states))
            instrument.count(
                "lr0.transitions", sum(len(s.transitions) for s in self.states)
            )

    # -- construction ------------------------------------------------------

    def _closure(self, kernel: Iterable[Item]) -> Tuple[Item, ...]:
        grammar = self.grammar
        items = list(kernel)
        seen = set(items)
        added_nonterminals = set()
        i = 0
        while i < len(items):
            item = items[i]
            i += 1
            symbol = next_symbol(grammar, item)
            if symbol is None or symbol.is_terminal:
                continue
            if symbol in added_nonterminals:
                continue
            added_nonterminals.add(symbol)
            for production in grammar.productions_for(symbol):
                fresh = Item(production.index, 0)
                if fresh not in seen:
                    seen.add(fresh)
                    items.append(fresh)
        return tuple(items)

    def _intern(self, kernel: FrozenSet[Item]) -> int:
        existing = self._kernel_index.get(kernel)
        if existing is not None:
            return existing
        state_id = len(self.states)
        closure = self._closure(sorted(kernel))
        reductions = tuple(
            item for item in closure if next_symbol(self.grammar, item) is None
        )
        state = LR0State(state_id, kernel, closure, reductions)
        self.states.append(state)
        self._kernel_index[kernel] = state_id
        return state_id

    def _build(self) -> None:
        start_kernel = frozenset((Item(0, 0),))
        self._intern(start_kernel)
        worklist = [0]
        while worklist:
            state = self.states[worklist.pop()]
            by_symbol: Dict[Symbol, List[Item]] = {}
            for item in state.closure:
                symbol = next_symbol(self.grammar, item)
                if symbol is not None:
                    by_symbol.setdefault(symbol, []).append(item.advanced())
            # Deterministic successor order: symbol table order.
            for symbol in sorted(by_symbol, key=lambda s: s.index):
                kernel = frozenset(by_symbol[symbol])
                known = kernel in self._kernel_index
                successor = self._intern(kernel)
                state.transitions[symbol] = successor
                if not known:
                    worklist.append(successor)
        # worklist order above is LIFO which still enumerates everything;
        # ids are assigned at intern time so numbering is deterministic.

    def _index_predecessors(self) -> None:
        collect: Dict[int, Dict[Symbol, List[int]]] = {}
        for state in self.states:
            for symbol, successor in state.transitions.items():
                collect.setdefault(successor, {}).setdefault(symbol, []).append(
                    state.state_id
                )
        self._predecessors = {
            q: {symbol: tuple(sorted(ps)) for symbol, ps in per_symbol.items()}
            for q, per_symbol in collect.items()
        }

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.states)

    def goto(self, state_id: int, symbol: Symbol) -> Optional[int]:
        """Successor of *state_id* on *symbol*, or None."""
        return self.states[state_id].transitions.get(symbol)

    def goto_sequence(self, state_id: int, symbols: Sequence[Symbol]) -> Optional[int]:
        """Walk the goto function along *symbols*; None if the path dies."""
        current: Optional[int] = state_id
        for symbol in symbols:
            if current is None:
                return None
            current = self.states[current].transitions.get(symbol)
        return current

    def predecessors(self, state_id: int, symbol: Symbol) -> Tuple[int, ...]:
        """All states p with ``goto(p, symbol) == state_id``."""
        return self._predecessors.get(state_id, {}).get(symbol, ())

    def predecessors_along(
        self, state_id: int, symbols: Sequence[Symbol]
    ) -> Tuple[int, ...]:
        """All states p with ``p --symbols--> state_id`` (walk backwards).

        This implements the ``p --omega--> q`` spelling lookup used by the
        `includes` and `lookback` relations without any forward search.
        """
        frontier = [state_id]
        for symbol in reversed(symbols):
            next_frontier: List[int] = []
            for q in frontier:
                next_frontier.extend(self.predecessors(q, symbol))
            if not next_frontier:
                return ()
            frontier = next_frontier
        return tuple(sorted(set(frontier)))

    @property
    def nonterminal_transitions(self) -> List[Tuple[int, Symbol]]:
        """All (state, nonterminal) transition pairs — the node set of the
        DeRemer–Pennello relations."""
        pairs: List[Tuple[int, Symbol]] = []
        for state in self.states:
            for symbol in state.transitions:
                if symbol.is_nonterminal:
                    pairs.append((state.state_id, symbol))
        return pairs

    @property
    def accept_state(self) -> int:
        """The state reached after shifting ``S $end`` from the start."""
        p0 = self.grammar.productions[0]
        state = self.goto_sequence(0, p0.rhs)
        if state is None:  # pragma: no cover - impossible on augmented grammars
            raise GrammarValidationError("automaton lacks an accept state")
        return state

    def format_state(self, state_id: int, kernel_only: bool = False) -> str:
        """Multi-line human-readable dump of one state."""
        state = self.states[state_id]
        items = sorted(state.kernel) if kernel_only else list(state.closure)
        lines = [f"state {state_id}"]
        lines.extend(f"  {format_item(self.grammar, item)}" for item in items)
        for symbol, target in sorted(
            state.transitions.items(), key=lambda kv: kv[0].index
        ):
            lines.append(f"  {symbol.name} => state {target}")
        return "\n".join(lines)

    def stats(self) -> Dict[str, int]:
        """Size statistics for the benchmark harness."""
        return {
            "states": len(self.states),
            "kernel_items": sum(len(s.kernel) for s in self.states),
            "closure_items": sum(len(s.closure) for s in self.states),
            "transitions": sum(len(s.transitions) for s in self.states),
            "nonterminal_transitions": len(self.nonterminal_transitions),
            "reductions": sum(len(s.reductions) for s in self.states),
        }

"""Graphviz (DOT) rendering of LR automata and the DP relations.

Visual debugging surface: dump the LR(0) automaton with item sets per
state, or the `reads`/`includes` relation graphs over nonterminal
transitions (SCCs are where the interesting diagnostics live, and they
are much easier to spot drawn than printed).

The output is plain DOT text; no graphviz dependency is needed to
produce it (only to render it).
"""

from __future__ import annotations

from typing import Iterable, List

from .items import format_item
from .lr0 import LR0Automaton


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def automaton_to_dot(
    automaton: LR0Automaton,
    kernel_only: bool = True,
    rankdir: str = "LR",
) -> str:
    """The LR(0) automaton as a DOT digraph (one record node per state)."""
    grammar = automaton.grammar
    lines: List[str] = [
        "digraph lr0 {",
        f"  rankdir={rankdir};",
        '  node [shape=box, fontname="monospace", fontsize=10];',
    ]
    for state in automaton.states:
        items = sorted(state.kernel) if kernel_only else list(state.closure)
        body = "\\l".join(_escape(format_item(grammar, item)) for item in items)
        label = f"state {state.state_id}\\n{body}\\l"
        lines.append(f'  s{state.state_id} [label="{label}"];')
    for state in automaton.states:
        for symbol, successor in sorted(
            state.transitions.items(), key=lambda kv: kv[0].index
        ):
            style = "" if symbol.is_terminal else ", style=bold"
            lines.append(
                f'  s{state.state_id} -> s{successor} '
                f'[label="{_escape(symbol.name)}"{style}];'
            )
    lines.append("}")
    return "\n".join(lines)


def relation_to_dot(
    nodes: "Iterable[tuple[int, Symbol]]",
    edges: "dict",
    name: str = "relation",
    highlight_sccs: "List[tuple] | None" = None,
) -> str:
    """A DP relation (reads/includes) over nonterminal transitions as DOT.

    *edges* maps each node to its successors; *highlight_sccs* (e.g. from
    :class:`~repro.core.lalr.LalrAnalysis`) colours nontrivial components.
    """
    in_scc = set()
    for component in highlight_sccs or ():
        in_scc.update(component)

    def node_id(node) -> str:
        state, symbol = node
        return f"n{state}_{symbol.index}"

    lines: List[str] = [
        f"digraph {name} {{",
        '  node [shape=ellipse, fontname="monospace", fontsize=10];',
    ]
    for node in nodes:
        state, symbol = node
        colour = ', style=filled, fillcolor="#ffcccc"' if node in in_scc else ""
        lines.append(
            f'  {node_id(node)} [label="({state}, {_escape(symbol.name)})"{colour}];'
        )
    for node, successors in edges.items():
        for successor in successors:
            lines.append(f"  {node_id(node)} -> {node_id(successor)};")
    lines.append("}")
    return "\n".join(lines)


def reads_to_dot(analysis) -> str:
    """The `reads` relation of a LalrAnalysis, SCCs highlighted."""
    return relation_to_dot(
        analysis.relations.transitions,
        analysis.relations.reads,
        name="reads",
        highlight_sccs=analysis.reads_sccs,
    )


def includes_to_dot(analysis) -> str:
    """The `includes` relation of a LalrAnalysis, SCCs highlighted."""
    return relation_to_dot(
        analysis.relations.transitions,
        analysis.relations.includes,
        name="includes",
        highlight_sccs=analysis.includes_sccs,
    )

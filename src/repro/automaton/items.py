"""LR items.

An **LR(0) item** is a production with a dot position: ``A -> alpha . beta``.
We represent it compactly as ``Item(production_index, dot)`` — production
objects are looked up through the grammar, keeping items hashable, tiny and
cheap to copy into kernels.

An **LR(1) item** additionally carries one lookahead terminal:
``Item1(production_index, dot, lookahead)``.
"""

from __future__ import annotations

from typing import NamedTuple

from ..grammar.grammar import Grammar
from ..grammar.production import Production
from ..grammar.symbols import Symbol


class Item(NamedTuple):
    """LR(0) item: dot position ``dot`` within production ``production``."""

    production: int
    dot: int

    def advanced(self) -> "Item":
        """The item with the dot moved one symbol to the right."""
        return Item(self.production, self.dot + 1)


class Item1(NamedTuple):
    """LR(1) item: an LR(0) core plus a single lookahead terminal."""

    production: int
    dot: int
    lookahead: Symbol

    @property
    def core(self) -> Item:
        """The LR(0) item underneath (lookahead dropped)."""
        return Item(self.production, self.dot)

    def advanced(self) -> "Item1":
        """The item with the dot moved one symbol to the right."""
        return Item1(self.production, self.dot + 1, self.lookahead)


def item_production(grammar: Grammar, item: "Item | Item1") -> Production:
    """The production an item's index refers to."""
    return grammar.productions[item.production]


def next_symbol(grammar: Grammar, item: "Item | Item1") -> "Symbol | None":
    """The symbol immediately after the dot, or None for a final item."""
    production = grammar.productions[item.production]
    if item.dot < len(production.rhs):
        return production.rhs[item.dot]
    return None


def next_sid(grammar: Grammar, item: "Item | Item1") -> int:
    """The dense symbol ID after the dot, or -1 for a final item — the
    integer-core counterpart of :func:`next_symbol`."""
    production = grammar.productions[item.production]
    if item.dot < len(production.rhs_sids):
        return production.rhs_sids[item.dot]
    return -1


def is_final(grammar: Grammar, item: "Item | Item1") -> bool:
    """True when the dot is at the end: the item calls for a reduction."""
    return item.dot >= len(grammar.productions[item.production].rhs)


def format_item(grammar: Grammar, item: "Item | Item1") -> str:
    """Human-readable rendering: ``A -> alpha . beta [, lookahead]``."""
    production = grammar.productions[item.production]
    parts = [s.name for s in production.rhs]
    parts.insert(item.dot, "·")
    body = " ".join(parts) if parts else "·"
    text = f"{production.lhs.name} -> {body}"
    if isinstance(item, Item1):
        text += f", {item.lookahead.name}"
    return text

"""Delta-scoped LR(0) recomputation — splice dirty states in place.

The pivotal observation: kernels are tuples of packed
``(production_index, dot)`` codes, which mention no right-hand-side
*symbols* at all.  An rhs-only edit therefore leaves every kernel code
literally unchanged; what changes is the per-state closure work — which
nonterminals get derived, which symbols label the outgoing buckets —
and only in states that contain an item of an edited production.

:func:`splice_lr0` exploits that: it rebuilds exactly the **dirty**
states (kernel mentions a changed production, or the closure derives a
dirty nonterminal) against the edited grammar's closure tables, keeps
every clean :class:`LR0State` object as-is, and preserves the original
state numbering.  Correctness rests on a replay argument: the from-
scratch builder is a deterministic LIFO traversal that pushes a state
the first time its kernel is interned, so if

- every clean state's content is unchanged (its kernel productions and
  derived nonterminals are untouched by the edit — true by the dirty
  definition), and
- every dirty state's *ordered successor-kernel sequence* after the
  edit equals the old one (verified here, state by state),

then the from-scratch traversal of the edited grammar makes the same
intern/push decisions in the same order and yields the identical state
set with identical numbering — so splicing recomputed rows into the old
state list reproduces the from-scratch automaton exactly.  Any state
where the verification fails (the edit re-shaped the automaton: states
appear, vanish, or renumber) raises :class:`IncrementalFallback` and the
caller rebuilds from scratch.

A second guard keeps the *relations* node space valid: each dirty
state's subsequence of outgoing nonterminal IDs must also be unchanged,
because the DeRemer–Pennello node set (packed
``state * num_nonterminals + nt_id`` in automaton order) must survive
for relation rows and digraph results to be patchable by node index.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Tuple

from ..core import instrument
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from .items import Item
from .lr0 import LR0Automaton, LR0State

__all__ = ["IncrementalFallback", "splice_lr0", "dirty_states"]


class IncrementalFallback(Exception):
    """The delta cannot be applied incrementally; rebuild from scratch.

    Raised by the splice layers when a verification guard fails (the
    edit re-shaped the automaton, changed nullability, or widened the
    item packing).  Always recoverable: the session catches it, counts
    ``phase.fallback`` and rebuilds — incremental mode never produces a
    wrong answer, only occasionally a slower one.
    """


def _occurrence_index(
    automaton: LR0Automaton,
) -> "Tuple[List[List[int]], List[List[int]]]":
    """``(prod -> states, nt -> states)`` — which states mention each
    production in their kernel, and which derive each nonterminal.

    Cached on the automaton and *patched* across splices (see
    :func:`splice_lr0`): kernels never change under an rhs splice, so
    the production map is shared outright; only recomputed states'
    derived sets can differ.  With the index, :func:`dirty_states` is
    O(answer) instead of a full item scan per edit.
    """
    cached = getattr(automaton, "_occurrence_index", None)
    if cached is not None:
        return cached
    shift = automaton._dot_shift
    prod_states: List[List[int]] = [[] for _ in automaton.grammar.productions]
    nt_states: List[List[int]] = [
        [] for _ in range(automaton.ids.num_nonterminals)
    ]
    for state in automaton.states:
        state_id = state.state_id
        seen = set()
        for code in state.kernel_codes:
            production = code >> shift
            if production not in seen:
                seen.add(production)
                prod_states[production].append(state_id)
        for nt_id in state.derived_nts:
            nt_states[nt_id].append(state_id)
    index = (prod_states, nt_states)
    automaton._occurrence_index = index
    return index


def dirty_states(
    automaton: LR0Automaton,
    changed_productions: Iterable[int],
    dirty_nonterminals: Iterable[Symbol],
) -> bytearray:
    """Flags[state_id] = 1 iff the state contains an item of a changed
    production — in its kernel or via a derived dirty nonterminal."""
    prod_states, nt_states = _occurrence_index(automaton)
    ids = automaton.ids
    flags = bytearray(len(automaton.states))
    for index in changed_productions:
        for state_id in prod_states[index]:
            flags[state_id] = 1
    for symbol in dirty_nonterminals:
        for state_id in nt_states[ids.nonterminal_id(symbol)]:
            flags[state_id] = 1
    return flags


def splice_lr0(
    old: LR0Automaton,
    grammar: Grammar,
    changed_productions: Iterable[int],
    dirty_nonterminals: Iterable[Symbol],
) -> "Tuple[LR0Automaton, bytearray, List[int]]":
    """The edited grammar's LR(0) automaton, spliced from *old*.

    Args:
        old: The automaton of the pre-edit grammar.
        grammar: The edited grammar — augmented, same symbol-ID layout
            (the session's ``rhs`` delta eligibility guarantees both).
        changed_productions / dirty_nonterminals: The ``rhs`` delta.

    Returns:
        ``(automaton, dirty, dirty_ids)`` — the new automaton (clean
        states shared with *old*, identical numbering), the per-state
        dirty flags, and the dirty ids in ascending order.

    Raises:
        IncrementalFallback: The edit re-shaped the automaton (or
            widened the item packing) and cannot be spliced.
    """
    with instrument.span("lr0.splice"):
        shell = object.__new__(LR0Automaton)
        shell.grammar = grammar
        shell.ids = grammar.ids
        shell.states = []
        shell._predecessors = None
        shell._budget = None
        shell._prepare_closure_tables()
        if shell._dot_shift != old._dot_shift:
            raise IncrementalFallback(
                "item packing width changed (max rhs length crossed a "
                "power of two)"
            )

        dirty = dirty_states(old, changed_productions, dirty_nonterminals)
        dirty_ids = [i for i, flag in enumerate(dirty) if flag]
        states: List[LR0State] = list(old.states)
        old_states = old.states
        num_terminals = shell.ids.num_terminals
        for state_id in dirty_ids:
            old_state = old_states[state_id]
            derived, reductions, buckets = _close_kernel(
                shell, old_state.kernel_codes
            )
            old_successor_kernels = [
                old_states[old_state.targets[sid]].kernel_codes
                for sid in old_state.out_sids
            ]
            if [kernel for _, kernel in buckets] != old_successor_kernels:
                raise IncrementalFallback(
                    f"state {state_id}: successor kernels changed "
                    f"(the edit re-shapes the automaton)"
                )
            old_nt_sids = [s for s in old_state.out_sids if s >= num_terminals]
            new_nt_sids = [s for s, _ in buckets if s >= num_terminals]
            if old_nt_sids != new_nt_sids:
                raise IncrementalFallback(
                    f"state {state_id}: nonterminal transitions changed "
                    f"(the relations node space would shift)"
                )
            fresh = LR0State(
                state_id, old_state.kernel_codes, derived, reductions, shell
            )
            targets, out_sids = fresh.targets, fresh.out_sids
            for position, (sid, _) in enumerate(buckets):
                targets[sid] = old_state.targets[old_state.out_sids[position]]
                out_sids.append(sid)
            states[state_id] = fresh
        shell.states = states
        # Kernels are identical state-for-state (the guards above), so
        # the kernel interning index is shared, not copied — neither
        # automaton mutates it after construction.
        shell._kernel_index = old._kernel_index
        # Patch the occurrence index across (dirty_states above ensured
        # it exists on *old*): kernels pin the production map; only the
        # recomputed states' derived sets can differ, and list order is
        # irrelevant to the flag queries the index serves.
        prod_states, nt_states = old._occurrence_index
        nt_states = list(nt_states)
        touched: dict = {}
        for state_id in dirty_ids:
            old_derived = set(old_states[state_id].derived_nts)
            new_derived = set(states[state_id].derived_nts)
            for nt_id in old_derived.symmetric_difference(new_derived):
                bucket = touched.get(nt_id)
                if bucket is None:
                    bucket = touched[nt_id] = list(nt_states[nt_id])
                    nt_states[nt_id] = bucket
                if nt_id in old_derived:
                    bucket.remove(state_id)
                else:
                    bucket.append(state_id)
        shell._occurrence_index = (prod_states, nt_states)
    if instrument.enabled():
        instrument.count("phase.lr0.states_recomputed", len(dirty_ids))
        instrument.count("phase.lr0.states_reused", len(states) - len(dirty_ids))
    return shell, dirty, dirty_ids


def _close_kernel(
    shell: LR0Automaton, kernel_codes: Tuple[int, ...]
) -> "Tuple[array, Tuple[Item, ...], List[Tuple[int, Tuple[int, ...]]]]":
    """Closure + successor buckets for one kernel under *shell*'s tables.

    Mirrors exactly what ``LR0Automaton._intern`` plus the ``_build``
    inner loop compute for a state — same expansion order, same bucket
    order (declaration-sorted sids), same sorted codes per bucket — so
    the returned bucket sequence is directly comparable with a from-
    scratch state's successor sequence.
    """
    shift, mask = shell._dot_shift, shell._dot_mask
    rhs_sids_of = shell._prod_rhs_sids
    num_terminals = shell.ids.num_terminals
    kernel_shifts: List[Tuple[int, int]] = []
    reductions: List[Item] = []
    frontier: List[int] = []
    for code in kernel_codes:
        production, dot = code >> shift, code & mask
        rhs_sids = rhs_sids_of[production]
        if dot < len(rhs_sids):
            sid = rhs_sids[dot]
            kernel_shifts.append((sid, code + 1))
            if sid >= num_terminals:
                frontier.append(sid - num_terminals)
        else:
            reductions.append(Item(production, dot))
    added = bytearray(shell.ids.num_nonterminals)
    derived: "array" = array("i")
    first_nts = shell._nt_first_nts
    i = 0
    while i < len(frontier):
        nt_id = frontier[i]
        i += 1
        if added[nt_id]:
            continue
        added[nt_id] = 1
        derived.append(nt_id)
        frontier.extend(first_nts[nt_id])
    epsilon_items = shell._nt_epsilon_items
    for nt_id in derived:
        reductions.extend(epsilon_items[nt_id])

    by_sid = {}
    for sid, code in kernel_shifts:
        bucket = by_sid.get(sid)
        if bucket is None:
            by_sid[sid] = [code]
        else:
            bucket.append(code)
    shift_entries = shell._nt_shift_entries
    for nt_id in derived:
        for sid, code in shift_entries[nt_id]:
            bucket = by_sid.get(sid)
            if bucket is None:
                by_sid[sid] = [code]
            else:
                bucket.append(code)
    order = shell.ids.declaration_order()
    buckets: List[Tuple[int, Tuple[int, ...]]] = []
    for sid in sorted(by_sid, key=order.__getitem__):
        codes = by_sid[sid]
        codes.sort()
        buckets.append((sid, tuple(codes)))
    return derived, tuple(reductions), buckets

"""LR automata: LR(0) canonical collection and canonical LR(1) collection."""

from .dot import automaton_to_dot, includes_to_dot, reads_to_dot
from .items import Item, Item1, format_item, is_final, item_production, next_symbol
from .lr0 import LR0Automaton, LR0State
from .lr1 import LR1Automaton, LR1State

__all__ = [
    "Item",
    "automaton_to_dot",
    "includes_to_dot",
    "reads_to_dot",
    "Item1",
    "LR0Automaton",
    "LR0State",
    "LR1Automaton",
    "LR1State",
    "format_item",
    "is_final",
    "item_production",
    "next_symbol",
]

"""Grammar corpus, scalable families, and random grammar generation."""

from . import corpus, families
from .corpus import CorpusEntry, all_entries, load, load_all
from .families import (
    context_family,
    expression_family,
    family_sweep,
    keyword_statement_family,
    nullable_chain_family,
    state_explosion_family,
    unit_chain_family,
)
from .random_gen import random_grammar, random_grammar_batch, random_token_stream

__all__ = [
    "CorpusEntry",
    "all_entries",
    "context_family",
    "corpus",
    "expression_family",
    "families",
    "family_sweep",
    "keyword_statement_family",
    "load",
    "load_all",
    "nullable_chain_family",
    "random_grammar",
    "random_grammar_batch",
    "random_token_stream",
    "state_explosion_family",
    "unit_chain_family",
]

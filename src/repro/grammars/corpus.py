"""The named grammar corpus used by tests, examples and benchmarks.

Each entry records the grammar text (in one of the reader's formats), a
description, the grammar's expected position in the LR hierarchy, and
tags.  ``load(name)`` parses the text on demand; ``all_entries()`` is the
iteration order used by the benchmark tables, mirroring how the paper
reports per-grammar rows.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

from ..grammar.grammar import Grammar
from ..grammar.reader import load_grammar
from ..tables.classify import GrammarClass


class CorpusEntry(NamedTuple):
    name: str
    description: str
    text: str
    expected_class: GrammarClass
    #: expected result of the reads-SCC "not LR(k)" quick test
    expected_not_lr_k: bool
    tags: "tuple[str, ...]" = ()


_ENTRIES: "Dict[str, CorpusEntry]" = {}


def _register(entry: CorpusEntry) -> None:
    assert entry.name not in _ENTRIES, f"duplicate corpus entry {entry.name}"
    _ENTRIES[entry.name] = entry


def names() -> List[str]:
    return list(_ENTRIES)

def all_entries() -> Iterator[CorpusEntry]:
    return iter(_ENTRIES.values())


def entry(name: str) -> CorpusEntry:
    return _ENTRIES[name]


def load(name: str, augment: bool = False) -> Grammar:
    """Parse and return the corpus grammar called *name*."""
    item = _ENTRIES[name]
    return load_grammar(item.text, name=item.name, augment=augment)


def load_all(tag: "Optional[str]" = None) -> "List[Grammar]":
    """All corpus grammars, optionally filtered by tag."""
    return [
        load(item.name)
        for item in _ENTRIES.values()
        if tag is None or tag in item.tags
    ]


# ---------------------------------------------------------------------------
# Small classics
# ---------------------------------------------------------------------------

_register(CorpusEntry(
    name="lr0_demo",
    description="S -> A A; A -> a A | b — the textbook LR(0) grammar",
    text="""
S -> A A
A -> a A | b
""",
    expected_class=GrammarClass.LR0,
    expected_not_lr_k=False,
    tags=("tiny", "classic"),
))

_register(CorpusEntry(
    name="slr_not_lr0",
    description="S -> a | a b — needs one token of lookahead, FOLLOW suffices",
    text="""
S -> a | a b
""",
    expected_class=GrammarClass.SLR1,
    expected_not_lr_k=False,
    tags=("tiny",),
))

_register(CorpusEntry(
    name="expr",
    description="The classic unambiguous expression grammar (dragon-book 4.1)",
    text="""
E -> E + T | T
T -> T * F | F
F -> ( E ) | id
""",
    expected_class=GrammarClass.SLR1,
    expected_not_lr_k=False,
    tags=("classic", "parseable"),
))

_register(CorpusEntry(
    name="lalr_not_slr",
    description="FOLLOW merges contexts that per-state Follow keeps apart",
    text="""
S -> A a | b A c | d c | b d a
A -> d
""",
    expected_class=GrammarClass.LALR1,
    expected_not_lr_k=False,
    tags=("classic", "boundary"),
))

_register(CorpusEntry(
    name="lr1_not_lalr",
    description="Merging LR(1) states manufactures a reduce/reduce conflict",
    text="""
S -> a A d | b B d | a B e | b A e
A -> c
B -> c
""",
    expected_class=GrammarClass.LR1,
    expected_not_lr_k=False,
    tags=("classic", "boundary"),
))

_register(CorpusEntry(
    name="dangling_else",
    description="The ambiguous if/then/else grammar — not LR(1)",
    text="""
S -> if S then_else | other
then_else -> %empty | else S
""",
    expected_class=GrammarClass.NOT_LR1,
    expected_not_lr_k=False,
    tags=("ambiguous",),
))

_register(CorpusEntry(
    name="palindrome",
    description="Even-length palindromes: unambiguous yet not LR(k) for any k "
                "(the handle's middle cannot be found deterministically) — "
                "but with an acyclic reads relation, so the quick test stays quiet",
    text="""
S -> a S a | b S b | %empty
""",
    expected_class=GrammarClass.NOT_LR1,
    expected_not_lr_k=False,
    tags=("boundary",),
))

_register(CorpusEntry(
    name="reads_cycle",
    description="Nullable transitions loop in the goto graph: the reads "
                "relation has a nontrivial SCC, proving not-LR(k) (paper's Theorem)",
    text="""
X -> A B X | %empty
A -> a | %empty
B -> b | %empty
""",
    expected_class=GrammarClass.NOT_LR1,
    expected_not_lr_k=True,
    tags=("pathological",),
))

_register(CorpusEntry(
    name="epsilon_heavy",
    description="Optional-clause soup: long nullable chains stress DR/reads",
    text="""
decl -> opt_static opt_const type opt_init ;
opt_static -> static | %empty
opt_const -> const | %empty
opt_init -> = id | %empty
type -> int | bool
""",
    expected_class=GrammarClass.SLR1,
    expected_not_lr_k=False,
    tags=("nullable", "parseable"),
))

_register(CorpusEntry(
    name="unit_chain",
    description="Deep unit-production chain: long includes chains, LALR == SLR",
    text="""
A0 -> A1 | A0 + A1
A1 -> A2 | A1 - A2
A2 -> A3 | A2 * A3
A3 -> A4 | A3 / A4
A4 -> A5 | A4 '%' A5
A5 -> id | ( A0 )
""",
    expected_class=GrammarClass.SLR1,
    expected_not_lr_k=False,
    tags=("classic", "parseable"),
))


# ---------------------------------------------------------------------------
# Realistic language grammars
# ---------------------------------------------------------------------------

_register(CorpusEntry(
    name="json",
    description="JSON (ECMA-404 shape): values, objects, arrays",
    text="""
%token STRING NUMBER
%start value
%%
value : object | array | STRING | NUMBER | true | false | null ;
object : '{' members '}' ;
members : %empty | member_list ;
member_list : member | member_list ',' member ;
member : STRING ':' value ;
array : '[' elements ']' ;
elements : %empty | element_list ;
element_list : value | element_list ',' value ;
""",
    expected_class=GrammarClass.SLR1,
    expected_not_lr_k=False,
    tags=("realistic", "parseable"),
))

_register(CorpusEntry(
    name="mini_pascal",
    description="A Pascal-like language: declarations, statements, expressions",
    text="""
%token ID NUM
%start prog
%%
prog : prog_head block '.' ;
prog_head : program ID ';' ;
block : decl_part compound ;
decl_part : %empty | var_part ;
var_part : var var_decl_list ;
var_decl_list : var_decl ';' | var_decl_list var_decl ';' ;
var_decl : id_list ':' type_spec ;
id_list : ID | id_list ',' ID ;
type_spec : integer | boolean | array '[' NUM ']' of type_spec ;
compound : begin stmt_list end ;
stmt_list : stmt | stmt_list ';' stmt ;
stmt : %empty
     | ID ':=' expr
     | compound
     | if expr then stmt
     | if expr then stmt else stmt
     | while expr do stmt
     ;
expr : simple_expr
     | simple_expr relop simple_expr
     ;
relop : '=' | '<' | '>' ;
simple_expr : term
            | simple_expr '+' term
            | simple_expr '-' term
            ;
term : factor
     | term '*' factor
     | term div factor
     ;
factor : ID | NUM | '(' expr ')' | not factor ;
""",
    # The if/then/else pair makes this ambiguous -> shift/reduce conflict.
    expected_class=GrammarClass.NOT_LR1,
    expected_not_lr_k=False,
    tags=("realistic",),
))

_register(CorpusEntry(
    name="mini_pascal_det",
    description="mini_pascal with matched/unmatched statements: conflict-free",
    text="""
%token ID NUM
%start prog
%%
prog : prog_head block '.' ;
prog_head : program ID ';' ;
block : decl_part compound ;
decl_part : %empty | var_part ;
var_part : var var_decl_list ;
var_decl_list : var_decl ';' | var_decl_list var_decl ';' ;
var_decl : id_list ':' type_spec ;
id_list : ID | id_list ',' ID ;
type_spec : integer | boolean | array '[' NUM ']' of type_spec ;
compound : begin stmt_list end ;
stmt_list : stmt | stmt_list ';' stmt ;
stmt : matched | unmatched ;
matched : %empty
        | ID ':=' expr
        | compound
        | if expr then matched else matched
        | while expr do matched
        ;
unmatched : if expr then stmt
          | if expr then matched else unmatched
          | while expr do unmatched
          ;
expr : simple_expr
     | simple_expr relop simple_expr
     ;
relop : '=' | '<' | '>' ;
simple_expr : term
            | simple_expr '+' term
            | simple_expr '-' term
            ;
term : factor
     | term '*' factor
     | term div factor
     ;
factor : ID | NUM | '(' expr ')' | not factor ;
""",
    expected_class=GrammarClass.SLR1,
    expected_not_lr_k=False,
    tags=("realistic", "parseable"),
))

_register(CorpusEntry(
    name="mini_c",
    description="A C-like language core: functions, statements, expressions "
                "with a full precedence ladder expressed grammatically",
    text="""
%token ID NUM
%start translation_unit
%%
translation_unit : external_decl | translation_unit external_decl ;
external_decl : function_def | declaration ;
function_def : type_name ID '(' param_list ')' compound_stmt ;
param_list : %empty | params ;
params : param | params ',' param ;
param : type_name ID ;
type_name : int | char | void ;
declaration : type_name init_decl_list ';' ;
init_decl_list : init_decl | init_decl_list ',' init_decl ;
init_decl : ID | ID '=' assign_expr ;
compound_stmt : '{' block_items '}' ;
block_items : %empty | block_items block_item ;
block_item : declaration | stmt ;
stmt : expr_stmt
     | compound_stmt
     | if '(' expr ')' stmt
     | if '(' expr ')' stmt else stmt
     | while '(' expr ')' stmt
     | return expr ';'
     | return ';'
     ;
expr_stmt : expr ';' | ';' ;
expr : assign_expr | expr ',' assign_expr ;
assign_expr : cond_expr | unary_expr '=' assign_expr ;
cond_expr : or_expr | or_expr '?' expr ':' cond_expr ;
or_expr : and_expr | or_expr '||' and_expr ;
and_expr : eq_expr | and_expr '&&' eq_expr ;
eq_expr : rel_expr | eq_expr '==' rel_expr | eq_expr '!=' rel_expr ;
rel_expr : add_expr | rel_expr '<' add_expr | rel_expr '>' add_expr ;
add_expr : mul_expr | add_expr '+' mul_expr | add_expr '-' mul_expr ;
mul_expr : unary_expr | mul_expr '*' unary_expr | mul_expr '/' unary_expr ;
unary_expr : postfix_expr | '-' unary_expr | '!' unary_expr | '*' unary_expr ;
postfix_expr : primary_expr | postfix_expr '(' arg_list ')' ;
arg_list : %empty | args ;
args : assign_expr | args ',' assign_expr ;
primary_expr : ID | NUM | '(' expr ')' ;
""",
    # dangling else again -> one classic shift/reduce conflict.
    expected_class=GrammarClass.NOT_LR1,
    expected_not_lr_k=False,
    tags=("realistic",),
))

_register(CorpusEntry(
    name="toy_java",
    description="A Java-like language (classes, methods, statements, full "
                "expression ladder): 95 productions, LALR(1) but not SLR(1) - "
                "the realistic grammar class the paper targets",
    text="%token ID NUM STRING\n%start compilation_unit\n%%\ncompilation_unit : type_decls ;\ntype_decls : %empty | type_decls class_decl ;\nclass_decl : class ID opt_extends '{' members '}' ;\nopt_extends : %empty | extends ID ;\nmembers : %empty | members member ;\nmember : field_decl | method_decl ;\nfield_decl : type ID ';' | type ID '=' expr ';' ;\nmethod_decl : type ID '(' params ')' block\n            | void ID '(' params ')' block\n            ;\nparams : %empty | param_list ;\nparam_list : param | param_list ',' param ;\nparam : type ID ;\ntype : base_type | type '[' ']' ;\nbase_type : int | boolean | ID ;\nblock : '{' stmts '}' ;\nstmts : %empty | stmts stmt ;\nstmt : matched | unmatched ;\nmatched : expr_stmt\n        | block\n        | if '(' expr ')' matched else matched\n        | while '(' expr ')' matched\n        | for '(' opt_expr ';' opt_expr ';' opt_expr ')' matched\n        | return opt_expr ';'\n        | break ';'\n        | continue ';'\n        | local_decl\n        ;\nunmatched : if '(' expr ')' stmt\n          | if '(' expr ')' matched else unmatched\n          | while '(' expr ')' unmatched\n          | for '(' opt_expr ';' opt_expr ';' opt_expr ')' unmatched\n          ;\nlocal_decl : base_type ID ';' | base_type ID '=' expr ';' ;\nexpr_stmt : expr ';' | ';' ;\nopt_expr : %empty | expr ;\nexpr : assignment ;\nassignment : conditional | unary '=' assignment ;\nconditional : logical_or | logical_or '?' expr ':' conditional ;\nlogical_or : logical_and | logical_or '||' logical_and ;\nlogical_and : equality | logical_and '&&' equality ;\nequality : relational | equality '==' relational | equality '!=' relational ;\nrelational : additive\n           | relational '<' additive\n           | relational '>' additive\n           | relational '<=' additive\n           | relational '>=' additive\n           ;\nadditive : multiplicative\n         | additive '+' multiplicative\n         | additive '-' multiplicative\n         ;\nmultiplicative : unary\n               | multiplicative '*' unary\n               | multiplicative '/' unary\n               | multiplicative '%' unary\n               ;\nunary : postfix | '-' unary | '!' unary | new_expr ;\nnew_expr : new base_type '(' args ')' | new base_type '[' expr ']' ;\npostfix : primary\n        | postfix '.' ID\n        | postfix '.' ID '(' args ')'\n        | postfix '[' expr ']'\n        ;\nargs : %empty | arg_list ;\narg_list : expr | arg_list ',' expr ;\nprimary : ID | NUM | STRING | true | false | null | this | '(' expr ')' | ID '(' args ')' ;\n",
    expected_class=GrammarClass.LALR1,
    expected_not_lr_k=False,
    tags=("realistic", "boundary", "parseable"),
))

_register(CorpusEntry(
    name="algol_like",
    description="An ALGOL-60-flavoured language (blocks, for-lists, "
                "switch/goto, conditional expressions): the language family "
                "the paper's own evaluation used; LALR(1) but not SLR(1)",
    text="%token ID NUM STRINGLIT\n%start program\n%%\nprogram : block_stmt ;\nblock_stmt : begin_kw decl_seq stmt_seq end_kw ;\nbegin_kw : begin ;\nend_kw : end ;\ndecl_seq : %empty | decl_seq decl ';' ;\ndecl : type_kw id_group\n     | array type_kw ID '[' bound ':' bound ']'\n     | procedure ID formals ';' stmt\n     | switch ID ':=' designator_group\n     ;\ntype_kw : integer | real | boolean ;\nid_group : ID | id_group ',' ID ;\nbound : NUM | '-' NUM ;\nformals : %empty | '(' id_group ')' ;\ndesignator_group : designator | designator_group ',' designator ;\ndesignator : ID ;\nstmt_seq : stmt | stmt_seq ';' stmt ;\nstmt : matched | unmatched ;\nmatched : basic_stmt\n        | if_clause then_kw matched else_kw matched\n        | for_clause do matched\n        ;\nunmatched : if_clause then_kw stmt\n          | if_clause then_kw matched else_kw unmatched\n          | for_clause do unmatched\n          ;\nbasic_stmt : %empty\n           | variable ':=' expr\n           | goto designator\n           | ID actuals\n           | block_stmt\n           ;\nactuals : %empty | '(' expr_group ')' ;\nexpr_group : expr | expr_group ',' expr ;\nthen_kw : then ;\nelse_kw : else ;\nif_clause : if expr ;\nfor_clause : for variable ':=' for_list ;\nfor_list : for_elem | for_list ',' for_elem ;\nfor_elem : expr\n         | expr step expr until expr\n         | expr while expr\n         ;\nvariable : ID | ID '[' expr_group ']' ;\nexpr : simple_expr\n     | simple_expr relop simple_expr\n     | if_clause then_kw simple_expr else_kw expr\n     ;\nrelop : '<' | '<=' | '=' | '>=' | '>' | '!=' ;\nsimple_expr : term_chain\n            | sign term_chain\n            | simple_expr or_kw term_chain\n            ;\nor_kw : or ;\nsign : '+' | '-' ;\nterm_chain : term | term_chain and_kw term ;\nand_kw : and ;\nterm : factor | term mulop factor ;\nmulop : '*' | '/' | div | mod ;\nfactor : primary | factor '^' primary ;\nprimary : NUM\n        | STRINGLIT\n        | variable\n        | ID '(' expr_group ')'\n        | '(' expr ')'\n        | not_kw primary\n        ;\nnot_kw : not ;\n",
    expected_class=GrammarClass.LALR1,
    expected_not_lr_k=False,
    tags=("realistic", "boundary", "parseable"),
))

_register(CorpusEntry(
    name="expr_prec",
    description="Ambiguous expression grammar disambiguated by %left/%right "
                "declarations (the yacc idiom)",
    text="""
%token NUM
%left '+' '-'
%left '*' '/'
%right UMINUS
%start expr
%%
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr '/' expr
     | '-' expr %prec UMINUS
     | '(' expr ')'
     | NUM
     ;
""",
    # Raw (precedence ignored) the grammar is ambiguous.
    expected_class=GrammarClass.NOT_LR1,
    expected_not_lr_k=False,
    tags=("ambiguous", "precedence", "parseable"),
))

_register(CorpusEntry(
    name="lua_like_chunks",
    description="Statement-list language with optional terminators (nullable-"
                "heavy, Lua-flavoured): exercises Read sets over real shapes",
    text="""
%token NAME NUMBER
%start chunk
%%
chunk : stmts ;
stmts : %empty | stmts stmt opt_semi ;
opt_semi : %empty | ';' ;
stmt : NAME '=' exp
     | do chunk end
     | while exp do chunk end
     | if exp then chunk elseifs opt_else end
     | function NAME '(' opt_names ')' chunk end
     ;
elseifs : %empty | elseifs elseif exp then chunk ;
opt_else : %empty | else chunk ;
opt_names : %empty | names ;
names : NAME | names ',' NAME ;
exp : NUMBER | NAME | exp '+' exp_r | '(' exp ')' | function_call ;
exp_r : NUMBER | NAME | '(' exp ')' | function_call ;
function_call : NAME '(' opt_args ')' ;
opt_args : %empty | args ;
args : exp | args ',' exp ;
""",
    expected_class=GrammarClass.SLR1,
    expected_not_lr_k=False,
    tags=("realistic", "nullable", "parseable"),
))

_register(CorpusEntry(
    name="nqlalr_trap",
    description="LALR(1)-clean, but the NQLALR shortcut (Follow sets merged "
                "per goto-target state, paper \u00a77) manufactures a spurious "
                "reduce/reduce conflict through the unit production A -> B",
    text="""
S -> A x A | %empty
A -> B
B -> a | %empty
""",
    expected_class=GrammarClass.LALR1,
    expected_not_lr_k=False,
    tags=("boundary", "pathological"),
))

_register(CorpusEntry(
    name="lvalue",
    description="Assignments with pointer lvalues (dragon-book 4.20): the "
                "canonical *realistic* LALR(1)-but-not-SLR(1) grammar",
    text="""
S -> L = R | R
L -> * R | id
R -> L
""",
    expected_class=GrammarClass.LALR1,
    expected_not_lr_k=False,
    tags=("classic", "boundary", "parseable"),
))

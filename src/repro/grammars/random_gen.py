"""Random grammar generation for property-based testing.

The equivalence property at the heart of the reproduction —
``LA_DP == LA_merge == LA_propagation`` on *every* grammar — needs a
supply of structurally diverse grammars: nullable-rich, recursive,
conflicted, boundary-line.  :func:`random_grammar` produces reduced
grammars from a seed; hypothesis drives the seed and the shape knobs.

Generated grammars are **not** filtered for LALR-ness: the lookahead
methods must agree on conflicted grammars too (conflicts are data, not
errors, at the lookahead level).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..grammar.builder import GrammarBuilder
from ..grammar.errors import GrammarValidationError
from ..grammar.grammar import Grammar
from ..grammar.transforms import reduce_grammar


#: Retry budget: shapes this small virtually always reduce within a few
#: tries; degenerate knob settings exhaust it and raise instead of looping.
_MAX_ATTEMPTS = 64


def _validate_knobs(
    n_nonterminals: int,
    n_terminals: int,
    max_alternatives: int,
    max_rhs_len: int,
    epsilon_weight: float,
) -> None:
    """Reject knob values for which no sample could ever be a grammar.

    Degenerate-but-meaningful settings (``n_terminals=1``,
    ``max_rhs_len=1``, ``epsilon_weight=1.0``) stay legal — they produce
    boundary-shaped grammars the fuzzer wants; only structurally
    impossible ones raise.
    """
    if n_nonterminals < 1:
        raise ValueError(f"n_nonterminals must be >= 1, got {n_nonterminals}")
    if n_terminals < 1:
        raise ValueError(f"n_terminals must be >= 1, got {n_terminals}")
    if max_alternatives < 1:
        raise ValueError(f"max_alternatives must be >= 1, got {max_alternatives}")
    if max_rhs_len < 1:
        raise ValueError(f"max_rhs_len must be >= 1, got {max_rhs_len}")
    if not 0.0 <= epsilon_weight <= 1.0:
        raise ValueError(
            f"epsilon_weight must be within [0.0, 1.0], got {epsilon_weight}"
        )


def random_grammar(
    seed: int,
    n_nonterminals: int = 4,
    n_terminals: int = 4,
    max_alternatives: int = 3,
    max_rhs_len: int = 4,
    epsilon_weight: float = 0.15,
    name: str = "",
) -> Grammar:
    """A random *reduced* grammar derived deterministically from *seed*.

    The raw sample may contain useless symbols or generate the empty
    language; generation retries with perturbed sub-seeds until reduction
    succeeds.  The retry loop is bounded: when a knob combination cannot
    produce a reduced grammar, the error names the seed and the knobs so
    the draw is reproducible (campaign drivers depend on this).

    Raises:
        ValueError: On structurally impossible knob values.
        GrammarValidationError: When the bounded retry loop exhausts.
    """
    _validate_knobs(
        n_nonterminals, n_terminals, max_alternatives, max_rhs_len, epsilon_weight
    )
    for attempt in range(_MAX_ATTEMPTS):
        grammar = _sample(
            random.Random(seed * 1_000_003 + attempt),
            n_nonterminals,
            n_terminals,
            max_alternatives,
            max_rhs_len,
            epsilon_weight,
            name or f"random_{seed}",
        )
        if grammar is None:
            continue
        try:
            return reduce_grammar(grammar)
        except GrammarValidationError:
            continue
    knobs = (
        f"n_nonterminals={n_nonterminals}, n_terminals={n_terminals}, "
        f"max_alternatives={max_alternatives}, max_rhs_len={max_rhs_len}, "
        f"epsilon_weight={epsilon_weight}"
    )
    raise GrammarValidationError(
        f"could not generate a reduced grammar from seed {seed} "
        f"within {_MAX_ATTEMPTS} attempts ({knobs})"
    )


def _sample(
    rng: random.Random,
    n_nonterminals: int,
    n_terminals: int,
    max_alternatives: int,
    max_rhs_len: int,
    epsilon_weight: float,
    name: str,
) -> Optional[Grammar]:
    nonterminals = [f"N{i}" for i in range(n_nonterminals)]
    terminals = [f"t{i}" for i in range(n_terminals)]
    builder = GrammarBuilder(name)

    made_any = False
    for lhs in nonterminals:
        alternatives = rng.randint(1, max_alternatives)
        for _ in range(alternatives):
            if rng.random() < epsilon_weight:
                builder.rule(lhs, [])
                made_any = True
                continue
            length = rng.randint(1, max_rhs_len)
            rhs: List[str] = []
            for _ in range(length):
                # Bias toward terminals so most nonterminals are generating.
                if rng.random() < 0.55:
                    rhs.append(rng.choice(terminals))
                else:
                    rhs.append(rng.choice(nonterminals))
            builder.rule(lhs, rhs)
            made_any = True
    if not made_any:
        return None
    try:
        return builder.build(start=nonterminals[0])
    except GrammarValidationError:
        return None


def random_grammar_batch(
    count: int, base_seed: int = 0, **knobs
) -> "List[Grammar]":
    """*count* random grammars with consecutive seeds (benchmark workload)."""
    return [random_grammar(base_seed + i, **knobs) for i in range(count)]


def random_token_stream(
    grammar: Grammar, seed: int, length_budget: int
) -> "Tuple[List, bool]":
    """A (tokens, is_valid) pair: half the time a valid sentence, half the
    time a mutated (likely-invalid) one — fuzz food for the parser engine."""
    from ..analysis.derive import SentenceGenerator

    rng = random.Random(seed)
    sentence = SentenceGenerator(grammar, seed=seed).sentence(budget=length_budget)
    if rng.random() < 0.5 or not sentence:
        return sentence, True
    mutated = list(sentence)
    # Never inject the reserved end marker: the LR engine (like yacc)
    # treats an explicit $end token as end-of-input, which would make the
    # "mutated" stream a truncation instead of a corruption.
    terminals = [t for t in grammar.terminals if not t.is_eof]
    mutation = rng.choice(("drop", "swap", "insert"))
    index = rng.randrange(len(mutated))
    if mutation == "drop":
        del mutated[index]
    elif mutation == "swap":
        mutated[index] = rng.choice(terminals)
    else:
        mutated.insert(index, rng.choice(terminals))
    # The mutation may accidentally still be a sentence; the caller must
    # re-check validity with a trusted parser when it matters.
    return mutated, False

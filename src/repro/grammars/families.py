"""Scalable grammar families for the scaling figures.

Each family maps a size parameter ``n`` to a grammar whose relevant
structure (states, relation edges, nullable chains, LR(1)/LALR state
ratio) grows with ``n`` in a controlled way.  These are the synthetic
stand-ins for the graded grammar suites the paper timed (see the
substitution table in DESIGN.md).
"""

from __future__ import annotations

from typing import List, Tuple

from ..grammar.builder import GrammarBuilder
from ..grammar.grammar import Grammar


def expression_family(n: int) -> Grammar:
    """An expression grammar with *n* precedence levels.

    ``E0 -> E0 op0 E1 | E1; ...; En -> ( E0 ) | id``.  Grammar size, LR(0)
    states, and includes-chain depth all grow linearly in *n*; the family
    is SLR(1) for every *n*.  This is the Figure-1 workload.
    """
    if n < 1:
        raise ValueError("expression_family needs n >= 1")
    builder = GrammarBuilder(f"expr_family_{n}")
    for level in range(n):
        builder.rule(f"E{level}", [f"E{level}", f"op{level}", f"E{level + 1}"])
        builder.rule(f"E{level}", [f"E{level + 1}"])
    builder.rule(f"E{n}", ["(", "E0", ")"])
    builder.rule(f"E{n}", ["id"])
    return builder.build(start="E0")


def nullable_chain_family(n: int) -> Grammar:
    """``S -> X1 ... Xn t; Xi -> ai | %empty`` — a length-*n* nullable run.

    Every prefix transition can "read through" the rest of the chain, so
    `reads` forms an O(n)-long path per state and Read-set computation
    touches O(n^2) relation structure overall.  This is the Figure-2
    workload.
    """
    if n < 1:
        raise ValueError("nullable_chain_family needs n >= 1")
    builder = GrammarBuilder(f"nullable_chain_{n}")
    builder.rule("S", [f"X{i}" for i in range(1, n + 1)] + ["t"])
    for i in range(1, n + 1):
        builder.rule(f"X{i}", [f"a{i}"])
        builder.rule(f"X{i}", [])
    return builder.build(start="S")


def unit_chain_family(n: int) -> Grammar:
    """``A0 -> A1 | A0 s0 A1; ... ; An -> id | ( A0 )`` — depth-*n* unit
    chains, producing includes-chains of length *n* (Follow propagation
    distance grows linearly; the propagation baseline needs ~n sweeps)."""
    if n < 1:
        raise ValueError("unit_chain_family needs n >= 1")
    builder = GrammarBuilder(f"unit_chain_{n}")
    for i in range(n):
        builder.rule(f"A{i}", [f"A{i + 1}"])
        builder.rule(f"A{i}", [f"A{i}", f"s{i}", f"A{i + 1}"])
    builder.rule(f"A{n}", ["id"])
    builder.rule(f"A{n}", ["(", "A0", ")"])
    return builder.build(start="A0")


def context_family(n: int) -> Grammar:
    """*n* distinct contexts around one recursive nonterminal.

    ``S -> k_i A e_i`` for i in 1..n, with ``A -> m A | t``.  The canonical
    LR(1) automaton must copy the whole A-chain once per distinct follower
    ``e_i``, while LR(0)/LALR shares it — the state-ratio workload for
    Table 3 (the size gap the paper's method exists to avoid paying).
    """
    if n < 1:
        raise ValueError("context_family needs n >= 1")
    builder = GrammarBuilder(f"context_{n}")
    for i in range(1, n + 1):
        builder.rule("S", [f"k{i}", "A", f"e{i}"])
    builder.rule("A", ["m", "A"])
    builder.rule("A", ["t"])
    return builder.build(start="S")


def keyword_statement_family(n: int) -> Grammar:
    """A flat statement language with *n* keyword-introduced forms —
    models "wide" real grammars (many alternatives, shallow nesting)."""
    if n < 1:
        raise ValueError("keyword_statement_family needs n >= 1")
    builder = GrammarBuilder(f"keywords_{n}")
    builder.rule("program", ["stmt"])
    builder.rule("program", ["program", "stmt"])
    for i in range(1, n + 1):
        builder.rule("stmt", [f"kw{i}", "(", "args", ")", ";"])
    builder.rule("args", [])
    builder.rule("args", ["arg_list"])
    builder.rule("arg_list", ["id"])
    builder.rule("arg_list", ["arg_list", ",", "id"])
    return builder.build(start="program")


def state_explosion_family(n: int) -> Grammar:
    """A right-linear grammar whose LR(0) automaton has ~2^n states.

    Encodes the classic subset-construction blowup language
    ``(a|b)* a (a|b)^{n-1} c``: after any prefix the automaton must
    remember which of the last *n* symbols were ``a``, so kernels range
    over all 2^n subsets of the counting chain ``T1..Tn``.  At n=14 the
    build already takes tens of thousands of states — the pathological
    workload the resource budgets (:mod:`repro.core.budget`) exist for,
    and the timeout-regression fixture in CI.
    """
    if n < 1:
        raise ValueError("state_explosion_family needs n >= 1")
    builder = GrammarBuilder(f"state_explosion_{n}")
    builder.rule("S", ["a", "S"])
    builder.rule("S", ["b", "S"])
    builder.rule("S", ["a", "T1"])
    for i in range(1, n):
        builder.rule(f"T{i}", ["a", f"T{i + 1}"])
        builder.rule(f"T{i}", ["b", f"T{i + 1}"])
    builder.rule(f"T{n}", ["c"])
    return builder.build(start="S")


def family_sweep(
    family: "callable", sizes: "List[int]"
) -> "List[Tuple[int, Grammar]]":
    """Materialise a family at several sizes: ``[(n, grammar), ...]``."""
    return [(n, family(n)) for n in sizes]

"""Command-line interface: ``python -m repro <command> <grammar-file>``.

Commands:
    pipeline   Run the full build pipeline (the default command).
    classify   Report the grammar's LR-hierarchy class and diagnostics.
    la         Print every LALR(1) look-ahead set (DeRemer-Pennello).
    table      Print the parse table for a chosen construction.
    states     Dump the LR(0) automaton's item sets.
    conflicts  Describe every conflict for a chosen construction.
    parse      Parse whitespace-separated terminals from --input.
    stats      Grammar/automaton/relation size statistics.
    generate   Emit a standalone Python parser module.
    dot        Emit Graphviz DOT for the automaton or a DP relation.
    lint       Report grammar hygiene findings (yacc-style warnings).
    ambiguity  Search for an ambiguous sentence up to a length bound.
    edit       Apply grammar edits through a live incremental session:
               only what each edit invalidated is recomputed, with
               --verify checking bit-identity against a scratch build.
    fuzz       Differential fuzzing: run/replay/minimize campaigns
               (see repro.fuzz; takes no grammar file).
    batch      Compile every grammar file in a directory through the
               (optionally cached) table pipeline, across --workers N
               processes (takes a directory, no grammar file).

Exit codes follow one contract across every command: ``0`` success /
clean, ``1`` a domain failure (conflicted table, invalid input, oracle
disagreement), ``2`` a usage error (bad flags, unknown oracle or
fingerprint) — so CI can tell "the theorem broke" from "the invocation
was wrong".

``python -m repro <grammar>`` (no command word) runs ``pipeline``; with
``--profile`` every command prints a per-phase timing/counter breakdown
at the end, and ``--cache [DIR]`` makes table-building commands load
tables from the on-disk cache instead of rebuilding (corrupt or stale
entries rebuild silently).

Every grammar command also takes the resource-budget flags ``--timeout
SEC`` and ``--max-states N`` (see repro.core.budget): when a limit is
hit the command exits 1 with a diagnostic naming the phase reached, the
resource that ran out and the partial progress made, instead of hanging
on a pathological grammar.

Grammar files use either supported format (see repro.grammar.reader).
Corpus grammars can be used anywhere a file is expected via
``corpus:<name>`` (e.g. ``corpus:expr``).
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import List, Optional

from .automaton import LR0Automaton
from .bench import format_table, grammar_row
from .core import Budget, BudgetExceeded, LalrAnalysis, instrument
from .grammar import Grammar, load_grammar_file
from .grammars import corpus
from .parser import ConflictedTableError, ParseError, Parser
from .tables import (
    TableCache,
    build_clr_table,
    build_lalr_table,
    build_lr0_table,
    build_slr_table,
    classify,
    default_cache_dir,
    generate_parser_module,
)

_BUILDERS = {
    "lr0": build_lr0_table,
    "slr1": build_slr_table,
    "lalr1": build_lalr_table,
    "clr1": build_clr_table,
}


def _load(spec: str) -> Grammar:
    if spec.startswith("corpus:"):
        return corpus.load(spec.split(":", 1)[1])
    return load_grammar_file(spec)


def _budget_from(args) -> "Optional[Budget]":
    """The request Budget for --timeout/--max-states, or None when unset."""
    timeout = getattr(args, "timeout", 0.0)
    max_states = getattr(args, "max_states", 0)
    if not timeout and not max_states:
        return None
    return Budget(timeout=timeout or None, max_states=max_states or None)


def _table_for(grammar: Grammar, args, budget: "Optional[Budget]" = None) -> "tuple":
    """(table, cache) for a table-building command, honouring --cache."""
    method = getattr(args, "method", "lalr1")
    builder = _BUILDERS[method]
    if budget is not None:
        builder = functools.partial(builder, budget=budget)
    augmented = grammar.augmented()
    cache_dir = getattr(args, "cache", None)
    if cache_dir:
        cache = TableCache(cache_dir, backend=getattr(args, "format", "json"))
        return cache.load_or_build(augmented, method, builder), cache
    return builder(augmented), None


def _cmd_pipeline(grammar: Grammar, args) -> int:
    """Run the whole pipeline: grammar -> LR(0) -> lookaheads -> table
    (through the cache when enabled), optionally parsing --input."""
    budget = _budget_from(args)
    table, cache = _table_for(grammar, args, budget)
    summary = table.conflict_summary()
    print(f"grammar: {grammar.name}")
    print(f"method: {table.method}")
    print(f"states: {table.n_states}")
    print(
        f"conflicts: {summary['shift_reduce']} shift/reduce, "
        f"{summary['reduce_reduce']} reduce/reduce, "
        f"{summary['resolved']} resolved by precedence"
    )
    if cache is not None:
        stats = cache.stats()
        verdict = "hit" if stats["hits"] else (
            "rebuilt (corrupt entry)" if stats["corrupt"] else "miss"
        )
        print(f"cache: {verdict} ({cache.directory})")
    if args.input:
        try:
            parser = Parser(table)
        except ConflictedTableError:
            # Fall back to the engine that can honestly answer for a
            # conflicted table instead of silently picking winners.
            from .parser import GlrParser

            parser = GlrParser(table)
        try:
            parser.parse(args.input.split(), budget=budget)
        except ParseError as error:
            print(f"input: invalid ({error})")
            return 1
        print("input: valid")
    return 0 if table.is_deterministic else 1


def _cmd_classify(grammar: Grammar, args) -> int:
    verdict = classify(grammar, ignore_precedence=not args.use_precedence)
    print(f"class: {verdict.grammar_class}")
    print(f"LR(0): {verdict.is_lr0}")
    print(f"SLR(1): {verdict.is_slr1}")
    print(f"LALR(1): {verdict.is_lalr1}")
    print(f"LR(1): {verdict.is_lr1}")
    print(f"not LR(k) (reads cycle): {verdict.not_lr_k}")
    for method, count in verdict.conflict_counts.items():
        rendered = "n/a" if count < 0 else str(count)
        print(f"conflicts[{method}]: {rendered}")
    return 0


def _cmd_la(grammar: Grammar, args) -> int:
    analysis = LalrAnalysis(grammar.augmented(), budget=_budget_from(args))
    print(analysis.describe())
    return 0


def _cmd_table(grammar: Grammar, args) -> int:
    from .tables import (
        BINARY_SUFFIX,
        compress,
        displace,
        save_binary_table,
        save_table,
    )

    table, _ = _table_for(grammar, args, _budget_from(args))
    print(table.format(max_states=args.print_states))
    summary = table.conflict_summary()
    print(
        f"\n{table.n_states} states, "
        f"{summary['shift_reduce']} shift/reduce, "
        f"{summary['reduce_reduce']} reduce/reduce, "
        f"{summary['resolved']} resolved by precedence"
    )
    if args.compress != "none":
        if table.unresolved_conflicts:
            print("compression: skipped (table has unresolved conflicts)")
        elif args.compress == "displace":
            stats = displace(table).packing_stats()
            ratio = stats["dense_cells"] / stats["stored_cells"]
            print(
                f"compression[displace]: {stats['dense_cells']} dense cells "
                f"-> {stats['stored_cells']} stored "
                f"({stats['comb_slots']} comb slots, "
                f"{stats['comb_gaps']} gaps; ratio {ratio:.2f}x)"
            )
        else:
            compressed = compress(table)
            dense = table.size_cells()
            stored = compressed.size_cells()
            ratio = dense / stored if stored else 1.0
            print(
                f"compression[default]: {dense} populated cells "
                f"-> {stored} stored (ratio {ratio:.2f}x)"
            )
    if args.output:
        # Conflicted tables serialize too (JSON format 4 / binary format
        # 3 carry the full conflict log for the GLR engine's nondet view).
        as_binary = args.format == "bin" or args.output.endswith(BINARY_SUFFIX)
        if as_binary:
            written = save_binary_table(table, args.output)
        else:
            save_table(table, args.output)
            import os

            written = os.path.getsize(args.output)
        print(f"wrote {args.output} ({written} bytes, "
              f"{'binary' if as_binary else 'json'})")
    return 0 if table.is_deterministic else 1


def _cmd_states(grammar: Grammar, args) -> int:
    automaton = LR0Automaton(grammar.augmented(), budget=_budget_from(args))
    for state in automaton.states:
        print(automaton.format_state(state.state_id, kernel_only=args.kernel))
        print()
    return 0


def _cmd_conflicts(grammar: Grammar, args) -> int:
    from .tables.explain import explain_conflict

    budget = _budget_from(args)
    augmented = grammar.augmented()
    automaton = LR0Automaton(augmented, budget=budget)
    table = _BUILDERS[args.method](augmented, budget=budget)
    if not table.conflicts:
        print("no conflicts")
        return 0
    for conflict in table.conflicts:
        print(conflict.describe(table.grammar))
        if args.explain and not conflict.resolved_by_precedence and args.method != "clr1":
            example = explain_conflict(automaton, conflict)
            if example is not None:
                print(f"  example: {example.describe()}")
    return 0 if table.is_deterministic else 1


def _cmd_parse(grammar: Grammar, args) -> int:
    budget = _budget_from(args)
    table, _ = _table_for(grammar, args, budget)
    tokens = args.input.split()
    if args.engine == "glr":
        from .parser import GlrParser

        try:
            forest = GlrParser(table).parse_forest(tokens, budget=budget)
        except ParseError as error:
            print(f"invalid: {error}")
            return 1
        count = forest.tree_count(limit=1000)
        plural = "" if count == 1 else "s"
        print(f"valid ({count}{'+' if count >= 1000 else ''} parse tree{plural})")
        if args.tree and count:
            print(forest.tree().format())
        return 0
    try:
        parser = Parser(table)
    except ConflictedTableError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        tree = parser.parse(tokens, budget=budget)
    except ParseError as error:
        print(f"invalid: {error}")
        return 1
    print("valid")
    if args.tree:
        print(tree.format())
    return 0


def _cmd_generate(grammar: Grammar, args) -> int:
    table, _ = _table_for(grammar, args, _budget_from(args))
    source = generate_parser_module(table, name=grammar.name, style=args.style)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.output}")
    else:
        print(source, end="")
    return 0


def _cmd_dot(grammar: Grammar, args) -> int:
    from .automaton import LR0Automaton, automaton_to_dot, includes_to_dot, reads_to_dot
    from .core import LalrAnalysis

    augmented = grammar.augmented()
    if args.graph == "automaton":
        print(automaton_to_dot(LR0Automaton(augmented), kernel_only=not args.closure))
    else:
        analysis = LalrAnalysis(augmented)
        renderer = reads_to_dot if args.graph == "reads" else includes_to_dot
        print(renderer(analysis))
    return 0


def _cmd_stats(grammar: Grammar, args) -> int:
    row = grammar_row(grammar)
    print(format_table(["metric", "value"], sorted(row.items())))
    return 0


def _cmd_ambiguity(grammar: Grammar, args) -> int:
    from .analysis import ambiguity_report

    report = ambiguity_report(grammar, args.bound)
    print(f"verdict: {report.verdict} (bound {report.bound}, "
          f"{report.sentences_checked} sentences checked)")
    if report.witness is not None:
        print(f"witness: {report.witness.words()!r} "
              f"({report.witness.tree_count} parse trees)")
    return 1 if report.verdict in ("ambiguous", "cyclic") else 0


def _cmd_lint(grammar: Grammar, args) -> int:
    from .grammar import lint, lint_report

    print(lint_report(grammar))
    findings = lint(grammar)
    return 1 if any(w.severity == "error" for w in findings) else 0


def _cmd_edit(grammar: Grammar, args) -> int:
    """Apply grammar edits through a live incremental analysis session."""
    from .grammar.delta import add_production, remove_production, replace_rhs
    from .pipeline import AnalysisSession

    steps = []
    for spec in args.set:
        index_text, sep, rhs_text = spec.partition(":")
        if not sep:
            return _usage_error(f"bad --set {spec!r} (want 'INDEX: rhs tokens')")
        try:
            steps.append(("set", int(index_text), rhs_text.split()))
        except ValueError:
            return _usage_error(f"bad --set index {index_text.strip()!r}")
    for spec in args.add:
        lhs, sep, rhs_text = spec.partition(":")
        if not sep or not lhs.strip():
            return _usage_error(f"bad --add {spec!r} (want 'LHS: rhs tokens')")
        steps.append(("add", lhs.strip(), rhs_text.split()))
    for index in args.remove:
        steps.append(("remove", index, None))
    if not steps:
        return _usage_error("no edits given (use --set/--add/--remove)")

    session = AnalysisSession(grammar.augmented())
    print(f"grammar: {grammar.name} ({len(session.automaton.states)} states)")
    for op, key, rhs in steps:
        try:
            if op == "set":
                edited = replace_rhs(session.grammar, key, rhs)
            elif op == "add":
                edited = add_production(session.grammar, key, rhs)
            else:
                edited = remove_production(session.grammar, key)
        except (IndexError, ValueError) as error:
            return _usage_error(f"--{op}: {error}")
        report = session.update(edited)
        label = f"{op} {key}" if op == "add" else f"{op} #{key}"
        print(f"edit[{label}]: {report.describe()}")

    table = session.table
    summary = table.conflict_summary()
    print(f"states: {table.n_states}")
    print(
        f"conflicts: {summary['shift_reduce']} shift/reduce, "
        f"{summary['reduce_reduce']} reduce/reduce, "
        f"{summary['resolved']} resolved by precedence"
    )
    if args.verify:
        reference = build_lalr_table(session.grammar)
        identical = (
            table.actions == reference.actions
            and table.gotos == reference.gotos
            and [c.describe(session.grammar) for c in table.conflicts]
            == [c.describe(session.grammar) for c in reference.conflicts]
        )
        print("verify: " + (
            "bit-identical to a from-scratch build" if identical else "MISMATCH"
        ))
        if not identical:
            return 1
    return 0 if table.is_deterministic else 1


def _usage_error(message: str) -> int:
    """Report a usage-level mistake; exit code 2 mirrors argparse's."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _cmd_fuzz_run(_, args) -> int:
    """Run a differential fuzzing campaign over random grammars."""
    from .fuzz import CampaignConfig, DEFAULT_BUCKETS, FailureCorpus, run_campaign
    from .fuzz.oracles import oracle_names

    names = None
    if args.oracles:
        names = [n.strip() for n in args.oracles.split(",") if n.strip()]
        unknown = [n for n in names if n not in oracle_names()]
        if unknown:
            return _usage_error(
                f"unknown oracle(s): {', '.join(unknown)} "
                f"(known: {', '.join(oracle_names())})"
            )
    buckets = list(DEFAULT_BUCKETS)
    if args.buckets:
        by_label = {bucket.label: bucket for bucket in DEFAULT_BUCKETS}
        wanted = [b.strip() for b in args.buckets.split(",") if b.strip()]
        unknown = [b for b in wanted if b not in by_label]
        if unknown:
            return _usage_error(
                f"unknown bucket(s): {', '.join(unknown)} "
                f"(known: {', '.join(by_label)})"
            )
        buckets = [by_label[b] for b in wanted]
    if args.edit_oracle:
        from .fuzz.oracles import default_oracle_names

        if names is None:
            names = default_oracle_names()
        if "incremental-edit" not in names:
            names = names + ["incremental-edit"]
    corpus_store = FailureCorpus(args.corpus) if args.corpus else None
    config = CampaignConfig(
        seed=args.seed,
        count=args.count,
        buckets=buckets,
        oracles=names,
        time_budget=args.time_budget or getattr(args, "timeout", 0.0),
        clr_state_bound=args.clr_bound,
    )
    report = run_campaign(config, corpus=corpus_store, workers=args.workers)
    print(f"campaign: seed={args.seed} count={args.count} "
          f"buckets={','.join(b.label for b in buckets)} "
          f"oracles={','.join(names) if names else 'all'}")
    for line in report.summary_lines():
        print(line)
    for failure in report.failures:
        print(f"FAIL {failure.describe()}")
    print(f"verdict: {'clean' if report.clean else 'disagreement'}")
    return 0 if report.clean else 1


def _cmd_fuzz_replay(_, args) -> int:
    """Replay the failure corpus; fail when any disagreement survives."""
    from .fuzz import FailureCorpus

    corpus_store = FailureCorpus(args.corpus)
    if args.fingerprint:
        try:
            entries = [corpus_store.get(args.fingerprint)]
        except KeyError as error:
            return _usage_error(str(error))
    else:
        entries = corpus_store.entries()
    if not entries:
        print(f"corpus is empty ({args.corpus})")
        print("verdict: clean")
        return 0
    surviving = 0
    for entry in entries:
        failures = entry.replay(clr_state_bound=args.clr_bound)
        if failures:
            surviving += 1
            print(f"FAIL {entry.fingerprint[:12]} {failures[0].describe()}")
        else:
            print(f"PASS {entry.fingerprint[:12]} [{entry.oracle}] "
                  f"no longer reproduces (pinned as regression)")
    print(f"replayed: {len(entries)} entries, {surviving} still failing")
    print(f"verdict: {'clean' if not surviving else 'disagreement'}")
    return 0 if not surviving else 1


def _cmd_fuzz_minimize(_, args) -> int:
    """Delta-debug one corpus entry down to a minimal failing grammar."""
    from .fuzz import FailureCorpus, minimize_grammar, oracle_predicate
    from .grammar.writer import write_arrow

    corpus_store = FailureCorpus(args.corpus)
    try:
        entry = corpus_store.get(args.fingerprint)
    except KeyError as error:
        return _usage_error(str(error))
    grammar = entry.grammar()
    predicate = oracle_predicate(
        entry.oracle, seed=entry.seed, clr_state_bound=args.clr_bound
    )
    if not predicate(grammar):
        print(f"{entry.fingerprint[:12]} [{entry.oracle}] no longer reproduces; "
              f"nothing to minimize")
        return 1
    result = minimize_grammar(grammar, predicate)
    text = write_arrow(result.grammar)
    entry.minimized_text = text
    corpus_store.update(entry)
    print(f"minimized {entry.fingerprint[:12]}: {result.describe()}")
    print(text, end="")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    return 0


#: Extensions ``repro batch`` picks up when no --pattern is given.
_BATCH_EXTENSIONS = (".y", ".cfg")


def _batch_worker(task: "tuple") -> dict:
    """Compile one grammar file; returns a plain-data row.

    Module-level and built from picklable plain data so the parallel
    executor can ship it to forked workers unchanged.
    """
    path, method, cache_dir, backend = task
    from .grammar.errors import GrammarError

    try:
        grammar = load_grammar_file(path)
        builder = _BUILDERS[method]
        augmented = grammar.augmented()
        if cache_dir:
            table = TableCache(cache_dir, backend=backend).load_or_build(
                augmented, method, builder
            )
        else:
            table = builder(augmented)
    except (GrammarError, OSError, ValueError) as error:
        return {"path": path, "status": "error", "detail": str(error)}
    except Exception as error:  # an unexpected blow-up is one ERROR row,
        # never a traceback that kills the whole batch (exit-code contract:
        # any failed grammar -> nonzero, the other rows still print).
        return {
            "path": path,
            "status": "error",
            "detail": f"internal error ({type(error).__name__}: {error})",
        }
    summary = table.conflict_summary()
    return {
        "path": path,
        "status": "ok",
        "grammar": grammar.name,
        "states": table.n_states,
        "deterministic": table.is_deterministic,
        "shift_reduce": summary["shift_reduce"],
        "reduce_reduce": summary["reduce_reduce"],
    }


def _cmd_batch(_, args) -> int:
    """Compile every grammar file in a directory through the pipeline."""
    import glob
    import os

    from .core.parallel import parallel_map

    if not os.path.isdir(args.directory):
        return _usage_error(f"not a directory: {args.directory}")
    if args.pattern:
        paths = sorted(glob.glob(os.path.join(args.directory, args.pattern)))
    else:
        paths = sorted(
            path
            for ext in _BATCH_EXTENSIONS
            for path in glob.glob(os.path.join(args.directory, f"*{ext}"))
        )
    paths = [path for path in paths if os.path.isfile(path)]
    if not paths:
        return _usage_error(f"no grammar files found in {args.directory}")
    tasks = [(path, args.method, args.cache, args.format) for path in paths]
    rows = parallel_map(_batch_worker, tasks, workers=args.workers)
    errors = conflicted = 0
    for row in rows:
        name = os.path.basename(row["path"])
        if row["status"] == "error":
            errors += 1
            print(f"ERROR {name}: {row['detail']}")
            continue
        verdict = "ok" if row["deterministic"] else "conflicted"
        if not row["deterministic"]:
            conflicted += 1
        print(f"{verdict:<10} {name}: {row['states']} states, "
              f"{row['shift_reduce']} s/r, {row['reduce_reduce']} r/r "
              f"[{args.method}]")
    print(f"batch: {len(rows)} grammars, "
          f"{len(rows) - errors - conflicted} clean, "
          f"{conflicted} conflicted, {errors} errors "
          f"(workers={args.workers})")
    return 1 if errors or conflicted else 0


def _cmd_serve(_, args) -> int:
    """Serve the pipeline over HTTP: compile/analyze/parse/fuzz + jobs + metrics."""
    from .service import GrammarService, serve_forever

    service = GrammarService(
        cache_dir=args.cache,
        cache_backend=args.format,
        hot_capacity=args.hot,
        job_workers=args.job_workers,
        queue_capacity=args.queue,
        pool_workers=args.workers,
        job_ttl=args.job_ttl,
    )
    return serve_forever(
        service,
        host=args.host,
        port=args.port,
        announce=lambda message: print(message, flush=True),
    )


#: `repro bench <name>` — name -> module under repro.bench with a main().
_BENCH_MODULES = {
    "core": "harness",
    "artifacts": "artifacts",
    "incremental": "incremental",
    "service": "service",
    "hotloop": "hotloop",
    "scaleout": "scaleout",
    "glr": "glr",
}


def _cmd_bench(_, args) -> int:
    """Run a bench harness; everything after the name passes through
    (e.g. `repro bench scaleout --workers 4 --baseline BENCH_scaleout.json`)."""
    import importlib

    module = importlib.import_module(
        f".bench.{_BENCH_MODULES[args.which]}", __package__
    )
    passthrough = list(args.bench_args)
    # argparse.REMAINDER keeps a leading "--" separator; drop it.
    if passthrough and passthrough[0] == "--":
        passthrough = passthrough[1:]
    return module.main(passthrough)


def _report_budget_exceeded(error: BudgetExceeded) -> int:
    """Print the degradation diagnostics for a blown --timeout/--max-states."""
    print(f"budget exceeded: {error.describe()}", file=sys.stderr)
    for key, value in sorted(error.progress.items()):
        print(f"  {key}: {value}", file=sys.stderr)
    return 1


def _print_profile(collector: "instrument.ProfileCollector", json_path: str) -> None:
    print()
    print(collector.format())
    tokens = collector.counters.get("parse.tokens", 0)
    parse_seconds = collector.total("parse.run")
    if tokens and parse_seconds > 0:
        print(f"throughput: {tokens / parse_seconds:,.0f} tokens/sec "
              f"({tokens} tokens in {parse_seconds * 1e3:.3f} ms)")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(collector.to_json())
        print(f"wrote profile to {json_path}")


def main(argv: "Optional[List[str]]" = None) -> int:
    """Entry point: parse *argv* (default sys.argv) and run the command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LALR(1) look-ahead sets (DeRemer & Pennello) — grammar tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, fn, cache: bool = False, **extra_args):
        command = sub.add_parser(name, help=fn.__doc__)
        command.add_argument("grammar", help="grammar file or corpus:<name>")
        command.add_argument("--profile", action="store_true",
                             help="print a per-phase timing/counter breakdown")
        command.add_argument("--profile-json", default="", metavar="FILE",
                             help="also write the profile as JSON to FILE")
        command.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                             help="abort the analysis after SEC wall-clock "
                                  "seconds (exit 1 with partial progress)")
        command.add_argument("--max-states", type=int, default=0, metavar="N",
                             help="abort once the automaton exceeds N states")
        if cache:
            command.add_argument(
                "--cache", nargs="?", const=default_cache_dir(), default="",
                metavar="DIR",
                help="load/store the parse table in an on-disk cache "
                     "(default DIR: $REPRO_TABLE_CACHE or the system tmp)",
            )
            command.add_argument(
                "--format", choices=["json", "bin"], default="json",
                help="table artifact format: readable JSON or the "
                     "versioned binary layout (mmap-loaded, no JSON "
                     "parse on the hot path)",
            )
        command.set_defaults(fn=fn)
        return command

    pipeline_cmd = add("pipeline", _cmd_pipeline, cache=True)
    pipeline_cmd.add_argument("--method", choices=_BUILDERS, default="lalr1")
    pipeline_cmd.add_argument("--input", default="",
                              help="whitespace-separated terminals to parse")

    add("classify", _cmd_classify).add_argument(
        "--use-precedence", action="store_true",
        help="honour %%left/%%right declarations when judging conflicts",
    )
    add("la", _cmd_la)

    table_cmd = add("table", _cmd_table, cache=True)
    table_cmd.add_argument("--method", choices=_BUILDERS, default="lalr1")
    table_cmd.add_argument("--print-states", type=int, default=0, metavar="N",
                           help="print at most N states of the table "
                                "(0 = all; --max-states is the build cap)")
    table_cmd.add_argument("--compress", choices=["none", "default", "displace"],
                           default="none",
                           help="also report a compressed representation: "
                                "'default' (sparse + default-reduce) or "
                                "'displace' (comb-packed check/value arrays)")
    table_cmd.add_argument("--output", "-o", default="", metavar="FILE",
                           help="write the table artifact to FILE "
                                "(binary when --format bin or FILE ends "
                                "in .rtb, else JSON)")

    states_cmd = add("states", _cmd_states)
    states_cmd.add_argument("--kernel", action="store_true")

    conflicts_cmd = add("conflicts", _cmd_conflicts)
    conflicts_cmd.add_argument("--method", choices=_BUILDERS, default="lalr1")
    conflicts_cmd.add_argument("--explain", action="store_true",
                               help="print an example input reaching each conflict")

    parse_cmd = add("parse", _cmd_parse, cache=True)
    parse_cmd.add_argument("--input", required=True,
                           help="whitespace-separated terminal names")
    parse_cmd.add_argument("--method", choices=_BUILDERS, default="lalr1")
    parse_cmd.add_argument("--engine", choices=["lr", "glr"], default="lr",
                           help="lr: deterministic engine (refuses conflicted "
                                "tables); glr: generalized engine exploring "
                                "every conflicted action")
    parse_cmd.add_argument("--tree", action="store_true")

    add("stats", _cmd_stats)

    generate_cmd = add("generate", _cmd_generate, cache=True)
    generate_cmd.add_argument("--method", choices=_BUILDERS, default="lalr1")
    generate_cmd.add_argument("--output", "-o", default="",
                              help="write to file instead of stdout")
    generate_cmd.add_argument("--style", choices=["dict", "dense", "displace"],
                              default="dict",
                              help="emitted table representation: per-state "
                                   "dicts, flat array('i') matrices, or "
                                   "comb-packed arrays")

    dot_cmd = add("dot", _cmd_dot)
    dot_cmd.add_argument("--graph", choices=["automaton", "reads", "includes"],
                         default="automaton")
    dot_cmd.add_argument("--closure", action="store_true",
                         help="show full closures, not just kernels")

    add("lint", _cmd_lint)

    ambiguity_cmd = add("ambiguity", _cmd_ambiguity)
    ambiguity_cmd.add_argument("--bound", type=int, default=6,
                               help="max sentence length to search (default 6)")

    edit_cmd = add("edit", _cmd_edit)
    edit_cmd.add_argument("--set", action="append", default=[],
                          metavar="'INDEX: RHS'",
                          help="replace production INDEX's right-hand side "
                               "with the given tokens (repeatable; applied "
                               "in order through one live session)")
    edit_cmd.add_argument("--add", action="append", default=[],
                          metavar="'LHS: RHS'",
                          help="append production LHS -> RHS (a structural "
                               "delta: the session rebuilds)")
    edit_cmd.add_argument("--remove", action="append", type=int, default=[],
                          metavar="INDEX",
                          help="remove production INDEX (a structural delta)")
    edit_cmd.add_argument("--verify", action="store_true",
                          help="after the edits, check the session's table "
                               "is bit-identical to a from-scratch build")

    batch_cmd = sub.add_parser(
        "batch", help="compile every grammar file in a directory"
    )
    batch_cmd.add_argument("directory", help="directory of grammar files")
    batch_cmd.add_argument("--pattern", default="", metavar="GLOB",
                           help="file glob within the directory "
                                "(default: *.y and *.cfg)")
    batch_cmd.add_argument("--method", choices=_BUILDERS, default="lalr1")
    batch_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                           help="compile across N worker processes "
                                "(default 1)")
    batch_cmd.add_argument("--cache", nargs="?", const=default_cache_dir(),
                           default="", metavar="DIR",
                           help="load/store parse tables in an on-disk cache "
                                "(default DIR: $REPRO_TABLE_CACHE or the "
                                "system tmp)")
    batch_cmd.add_argument("--format", choices=["json", "bin"], default="json",
                           help="cache artifact format (JSON or versioned "
                                "binary)")
    batch_cmd.add_argument("--profile", action="store_true",
                           help="print a per-phase timing/counter breakdown")
    batch_cmd.add_argument("--profile-json", default="", metavar="FILE",
                           help="also write the profile as JSON to FILE")
    batch_cmd.set_defaults(fn=_cmd_batch)

    serve_cmd = sub.add_parser(
        "serve", help="serve the pipeline over HTTP (asyncio, stdlib only)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8080,
                           help="listen port (0 = any free port; the bound "
                                "address is announced on stdout)")
    serve_cmd.add_argument("--cache", nargs="?", const=default_cache_dir(),
                           default=default_cache_dir(), metavar="DIR",
                           help="the shared table-artifact store backing "
                                "every request (default: $REPRO_TABLE_CACHE "
                                "or the system tmp; '' disables)")
    serve_cmd.add_argument("--format", choices=["json", "bin"], default="json",
                           help="cache artifact format (JSON or versioned "
                                "binary)")
    serve_cmd.add_argument("--hot", type=int, default=32, metavar="N",
                           help="in-memory hot-table LRU capacity "
                                "(default 32)")
    serve_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                           help="process-pool workers for request execution "
                                "(1 = in-process; >1 forks N workers sharing "
                                "the table store zero-copy; default 1)")
    serve_cmd.add_argument("--job-workers", type=int, default=2, metavar="N",
                           help="concurrent background jobs (default 2)")
    serve_cmd.add_argument("--queue", type=int, default=16, metavar="N",
                           help="bounded job-queue depth; submits beyond it "
                                "get 429 (default 16)")
    serve_cmd.add_argument("--job-ttl", type=float, default=3600.0, metavar="S",
                           help="seconds a finished job stays pollable before "
                                "eviction (0 disables; default 3600)")
    serve_cmd.set_defaults(fn=_cmd_serve)

    bench_cmd = sub.add_parser(
        "bench", help="run a bench harness (drift-checkable baselines)"
    )
    bench_cmd.add_argument("which", choices=sorted(_BENCH_MODULES),
                           help="which harness to run")
    bench_cmd.add_argument("bench_args", nargs=argparse.REMAINDER,
                           help="arguments passed through to the harness "
                                "(see `python -m repro.bench.<name> --help`)")
    bench_cmd.set_defaults(fn=_cmd_bench)

    fuzz_cmd = sub.add_parser(
        "fuzz", help="differential fuzzing of the equivalence theorem"
    )
    fuzz_sub = fuzz_cmd.add_subparsers(dest="fuzz_command", required=True)

    def add_fuzz(name, fn):
        command = fuzz_sub.add_parser(name, help=fn.__doc__)
        command.add_argument("--profile", action="store_true",
                             help="print a per-phase timing/counter breakdown")
        command.add_argument("--profile-json", default="", metavar="FILE",
                             help="also write the profile as JSON to FILE")
        command.add_argument("--clr-bound", type=int, default=60, metavar="N",
                             help="skip CLR-based oracles above N LR(0) states "
                                  "(0 = no bound; default 60)")
        command.set_defaults(fn=fn)
        return command

    fuzz_run = add_fuzz("run", _cmd_fuzz_run)
    fuzz_run.add_argument("--seed", type=int, default=0,
                          help="campaign seed; the whole sweep is a pure "
                               "function of it (default 0)")
    fuzz_run.add_argument("--count", type=int, default=500,
                          help="how many grammars to sweep (default 500)")
    fuzz_run.add_argument("--buckets", default="",
                          help="comma-separated shape buckets (default: all)")
    fuzz_run.add_argument("--oracles", default="",
                          help="comma-separated oracle names (default: all)")
    fuzz_run.add_argument("--corpus", default="", metavar="DIR",
                          help="persist distinct failures to this corpus dir")
    fuzz_run.add_argument("--edit-oracle", action="store_true",
                          help="also run the opt-in incremental-edit oracle "
                               "(session updates vs from-scratch rebuilds)")
    fuzz_run.add_argument("--time-budget", type=float, default=0.0, metavar="SEC",
                          help="stop sweeping after SEC wall-clock seconds")
    fuzz_run.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                          help="synonym for --time-budget (the uniform "
                               "budget flag)")
    fuzz_run.add_argument("--workers", type=int, default=1, metavar="N",
                          help="fan the sweep across N worker processes; "
                               "results are identical to --workers 1 "
                               "(default 1)")

    fuzz_replay = add_fuzz("replay", _cmd_fuzz_replay)
    fuzz_replay.add_argument("corpus", help="failure corpus directory")
    fuzz_replay.add_argument("--fingerprint", default="",
                             help="replay only the entry matching this "
                                  "fingerprint prefix")

    fuzz_minimize = add_fuzz("minimize", _cmd_fuzz_minimize)
    fuzz_minimize.add_argument("corpus", help="failure corpus directory")
    fuzz_minimize.add_argument("fingerprint",
                               help="fingerprint prefix of the entry to shrink")
    fuzz_minimize.add_argument("--output", "-o", default="",
                               help="also write the minimized grammar to a file")

    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Default command: `python -m repro <grammar> [flags]` runs `pipeline`.
    if argv and not argv[0].startswith("-") and argv[0] not in sub.choices:
        argv.insert(0, "pipeline")

    args = parser.parse_args(argv)
    # The fuzz subcommands drive whole grammar populations and take no
    # grammar-file positional of their own.
    needs_grammar = hasattr(args, "grammar")
    if getattr(args, "profile", False):
        with instrument.profile() as collector:
            grammar = _load(args.grammar) if needs_grammar else None
            try:
                code = args.fn(grammar, args)
            except BudgetExceeded as error:
                code = _report_budget_exceeded(error)
        _print_profile(collector, args.profile_json)
        return code
    grammar = _load(args.grammar) if needs_grammar else None
    try:
        return args.fn(grammar, args)
    except BudgetExceeded as error:
        return _report_budget_exceeded(error)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

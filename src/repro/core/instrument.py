"""Pipeline observability: spans, counters, and profile export.

The paper's headline claim — LALR(1) look-ahead computation linear in the
size of the relations — is only checkable if every phase of the pipeline
(grammar -> LR(0) -> relations -> Digraph -> table build -> serialize ->
parse) is measurable.  This module is the measurement substrate:

- :func:`span` — a nestable context manager marking one timed phase
  (``with span("lr0.build"): ...``).  Durations come from the monotonic
  clock (``time.perf_counter``), so they are immune to wall-clock steps.
- :func:`count` / :func:`absorb` — a counter registry that unifies the
  ad-hoc operation counters (`DigraphStats`, ``LalrRelations.stats()``,
  parser actions) under one namespace.
- :func:`profile` — enables collection on the current thread and yields
  the :class:`ProfileCollector` holding the results.

**Zero overhead when disabled** is the design constraint: every public
hook first checks the thread-local *active collector*; when none is
installed, :func:`span` returns a shared no-op context manager and
:func:`count` returns immediately — no allocation, no clock read.  The
pipeline can therefore stay instrumented unconditionally.

Collection is **thread-local**: two threads profiling concurrently never
see each other's spans, which is what lets the bench harness profile
grammars in parallel workers.

Export is JSON-safe (:meth:`ProfileCollector.as_dict`) for the
machine-readable profiles the benchmarks diff across commits, and
plain-text (:meth:`ProfileCollector.format`) for the CLI ``--profile``
breakdown.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ProfileCollector",
    "SpanRecord",
    "absorb",
    "count",
    "enabled",
    "profile",
    "span",
]

_tls = threading.local()


def _active() -> "Optional[ProfileCollector]":
    return getattr(_tls, "collector", None)


def enabled() -> bool:
    """True when a collector is active on this thread."""
    return _active() is not None


class SpanRecord:
    """One completed span: dotted name, nesting path, and duration."""

    __slots__ = ("name", "path", "seconds", "depth")

    def __init__(self, name: str, path: Tuple[str, ...], seconds: float):
        self.name = name
        self.path = path
        self.seconds = seconds
        self.depth = len(path) - 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "path": "/".join(self.path),
            "seconds": self.seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanRecord({'/'.join(self.path)}, {self.seconds:.6f}s)"


class ProfileCollector:
    """Accumulates spans and counters for one profiled region.

    Attributes:
        spans: Completed spans in *completion* order (children before
            parents, as with any post-order traversal).
        counters: Flat ``name -> int`` counter registry.
    """

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, int] = {}
        self._stack: List[str] = []

    # -- recording (used by the module-level hooks) --------------------

    def _open(self, name: str) -> None:
        self._stack.append(name)

    def _close(self, name: str, seconds: float) -> None:
        path = tuple(self._stack)
        self._stack.pop()
        self.spans.append(SpanRecord(name, path, seconds))

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def absorb(self, prefix: str, counters: Dict[str, int]) -> None:
        """Merge a legacy counter dict (e.g. ``DigraphStats.as_dict()``)
        under ``prefix.``-qualified names."""
        for key, value in counters.items():
            self.count(f"{prefix}.{key}", value)

    # -- queries -------------------------------------------------------

    def total(self, name: str) -> float:
        """Summed seconds of every span called *name* (all nestings)."""
        return sum(s.seconds for s in self.spans if s.name == name)

    def phase_totals(self) -> "Dict[str, float]":
        """Per-name summed durations, ordered by first completion."""
        totals: Dict[str, float] = {}
        for record in self.spans:
            totals[record.name] = totals.get(record.name, 0.0) + record.seconds
        return totals

    # -- export --------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe profile: spans, per-phase totals, and counters."""
        return {
            "spans": [s.as_dict() for s in self.spans],
            "phases": self.phase_totals(),
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def format(self) -> str:
        """Human-readable per-phase breakdown for the CLI ``--profile``."""
        lines: List[str] = ["phase breakdown (seconds):"]
        totals = self.phase_totals()
        if totals:
            width = max(len(name) for name in totals)
            for name, seconds in totals.items():
                lines.append(f"  {name.ljust(width)}  {seconds * 1e3:10.3f} ms")
        else:
            lines.append("  (no spans recorded)")
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name.ljust(width)}  {value:>12}")
        return "\n".join(lines)


class _Span:
    """A live span bound to a collector; created only when enabled."""

    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: ProfileCollector, name: str):
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_Span":
        self._collector._open(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        seconds = time.perf_counter() - self._start
        self._collector._close(self._name, seconds)


class _NullSpan:
    """Shared, stateless no-op span — the disabled-mode fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str) -> "_Span | _NullSpan":
    """Context manager timing one named phase on the active collector.

    Disabled mode (no active collector) returns a shared no-op object:
    no allocation, no clock read.
    """
    collector = _active()
    if collector is None:
        return _NULL_SPAN
    return _Span(collector, name)


def count(name: str, value: int = 1) -> None:
    """Add *value* to counter *name* (no-op when disabled)."""
    collector = _active()
    if collector is not None:
        collector.count(name, value)


def absorb(prefix: str, counters: Dict[str, int]) -> None:
    """Merge a counter dict under *prefix* (no-op when disabled)."""
    collector = _active()
    if collector is not None:
        collector.absorb(prefix, counters)


class profile:
    """Enable collection on this thread: ``with profile() as prof: ...``.

    Nested ``profile()`` blocks each get their own collector; the outer
    one is restored (and stops receiving events) until the inner block
    exits.  Works as a plain context manager so callers keep the
    collector object after the block closes.

    Passing an existing *collector* accumulates into it instead of
    starting fresh — how a long-lived driver (the grammar service's
    worker threads) folds many profiled requests into one running
    tally without merging dicts by hand.
    """

    def __init__(self, collector: "Optional[ProfileCollector]" = None) -> None:
        self.collector = collector if collector is not None else ProfileCollector()
        self._previous: Optional[ProfileCollector] = None

    def __enter__(self) -> ProfileCollector:
        self._previous = _active()
        _tls.collector = self.collector
        return self.collector

    def __exit__(self, *exc) -> None:
        _tls.collector = self._previous

"""Cooperative resource governance for the analysis pipeline.

The DeRemer–Pennello algorithm is linear in the size of the LR(0)
automaton and its relations — but the automaton itself can be
exponential in the grammar (Blum's pathological families), the parse
engine accepts unbounded token streams, and a fuzz campaign runs an
open-ended number of pipelines.  A production deployment therefore needs
*per-request budgets*: a way to say "spend at most this much" and get a
useful diagnostic back instead of a hung process.

:class:`Budget` is that primitive.  It is **cooperative**: governed code
calls the charge methods at its natural progress points (one per LR(0)
state interned, one per digraph frame, one per parsed token, ...) and a
charge that crosses a limit raises :class:`BudgetExceeded` carrying the
phase reached, the tripped resource, elapsed wall-clock time and the
partial-progress counters — enough for a caller to report *how far* the
computation got, not merely that it died.

Design rules:

- **Zero cost when absent.**  Every governed loop guards its charge with
  a single ``if budget is not None`` branch; an ungoverned run performs
  no clock reads and no attribute lookups.
- **Strided clock reads.**  Deadline checks on hot paths read the
  monotonic clock only once per :data:`CLOCK_STRIDE` charges; count caps
  (states, steps, tokens) are exact.
- **Raising vs. polling.**  Pipeline phases *raise* on exhaustion; batch
  drivers that prefer to stop gracefully poll :meth:`Budget.expired`
  instead (the fuzz campaign stops at a draw boundary and reports
  ``stopped_early``).
- **Observable.**  :meth:`Budget.publish` absorbs the governance
  counters into the instrument layer as ``budget.checks`` /
  ``budget.exceeded`` so ``--profile`` shows exactly what the
  governance overhead was.

One Budget instance governs one request end to end: the same object is
threaded through LR(0) construction, the relation builders, both Digraph
passes, table fill and (optionally) the parse, so the deadline covers
the *sum* of the phases, exactly like a serving timeout would.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from . import instrument

#: Hot-path deadline checks between monotonic-clock reads.  Count caps
#: are always exact; only the wall-clock test is strided.
CLOCK_STRIDE = 64


class BudgetExceeded(Exception):
    """A governed computation hit one of its resource limits.

    Attributes:
        phase: The pipeline phase that was active ("lr0", "relations",
            "digraph.reads", "digraph.includes", "la", "table.fill",
            "parse", ...).
        resource: The limit that tripped ("timeout", "max_states",
            "max_digraph_steps", "max_tokens", "max_parse_steps").
        limit: The configured limit value.
        elapsed: Wall-clock seconds since the budget was created.
        progress: Partial-progress counters at the point of failure
            (e.g. ``{"states": 4097, "checks": 4097}``).
    """

    def __init__(
        self,
        phase: str,
        resource: str,
        limit: float,
        elapsed: float,
        progress: Dict[str, int],
    ):
        self.phase = phase
        self.resource = resource
        self.limit = limit
        self.elapsed = elapsed
        self.progress = dict(progress)
        super().__init__(self.describe())

    def describe(self) -> str:
        done = ", ".join(
            f"{key}={value}" for key, value in sorted(self.progress.items())
        )
        return (
            f"budget exceeded in phase {self.phase!r} after {self.elapsed:.2f}s: "
            f"{self.resource} limit of {self.limit} hit"
            + (f" (progress: {done})" if done else "")
        )

    def as_dict(self) -> "Dict[str, object]":
        """JSON-safe payload for transports — the body of the service's
        typed 503 response carries exactly these fields."""
        return {
            "error": "budget_exceeded",
            "phase": self.phase,
            "resource": self.resource,
            "limit": self.limit,
            "elapsed_seconds": round(self.elapsed, 6),
            "progress": {key: self.progress[key] for key in sorted(self.progress)},
        }


class Budget:
    """A cooperative resource budget for one analysis/parse request.

    Args:
        timeout: Wall-clock deadline in seconds (measured from
            construction), or None for unbounded time.
        max_states: Cap on LR(0)/LR(1) automaton states interned.
        max_digraph_steps: Cap on digraph traversal steps (frame visits
            plus edges inspected, summed over both passes).
        max_tokens: Cap on tokens the parse engine consumes — the guard
            for unbounded input streams.
        max_parse_steps: Cap on parser actions (shifts + reduces +
            error checks); bounds recovery loops as well.

    All limits are optional and independent; a Budget with none set is a
    pure pass-through (its charges never raise).
    """

    __slots__ = (
        "timeout",
        "max_states",
        "max_digraph_steps",
        "max_tokens",
        "max_parse_steps",
        "started",
        "phase",
        "states",
        "digraph_steps",
        "tokens",
        "parse_steps",
        "checks",
        "exceeded",
        "_deadline",
        "_clock_countdown",
        "_published_checks",
        "_published_exceeded",
    )

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_states: Optional[int] = None,
        max_digraph_steps: Optional[int] = None,
        max_tokens: Optional[int] = None,
        max_parse_steps: Optional[int] = None,
    ):
        if timeout is not None and timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        for name, value in (
            ("max_states", max_states),
            ("max_digraph_steps", max_digraph_steps),
            ("max_tokens", max_tokens),
            ("max_parse_steps", max_parse_steps),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.timeout = timeout
        self.max_states = max_states
        self.max_digraph_steps = max_digraph_steps
        self.max_tokens = max_tokens
        self.max_parse_steps = max_parse_steps
        self.started = time.monotonic()
        self._deadline = None if timeout is None else self.started + timeout
        self.phase = "init"
        self.states = 0
        self.digraph_steps = 0
        self.tokens = 0
        self.parse_steps = 0
        self.checks = 0
        self.exceeded = False
        self._clock_countdown = CLOCK_STRIDE
        self._published_checks = 0
        self._published_exceeded = False

    # -- introspection -------------------------------------------------

    def elapsed(self) -> float:
        """Wall-clock seconds since the budget was created."""
        return time.monotonic() - self.started

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (may be negative), or None when
        no timeout is set."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def expired(self) -> bool:
        """Non-raising deadline poll, for drivers that stop gracefully
        (the fuzz campaign) rather than abort with an exception."""
        self.checks += 1
        return self._deadline is not None and time.monotonic() >= self._deadline

    def progress(self) -> Dict[str, int]:
        """The partial-progress counters (only the nonzero ones)."""
        snapshot = {
            "states": self.states,
            "digraph_steps": self.digraph_steps,
            "tokens": self.tokens,
            "parse_steps": self.parse_steps,
        }
        report = {key: value for key, value in snapshot.items() if value}
        report["checks"] = self.checks
        return report

    # -- phase & deadline ----------------------------------------------

    def enter_phase(self, name: str) -> None:
        """Record the pipeline phase and check the deadline exactly.

        Phase boundaries are cheap relative to the work inside them, so
        the clock is always read here (no striding).
        """
        self.phase = name
        self.checks += 1
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self._exhaust("timeout", self.timeout)

    def checkpoint(self) -> None:
        """An exact (non-strided) deadline check, for coarse loops."""
        self.checks += 1
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self._exhaust("timeout", self.timeout)

    def _tick_clock(self) -> None:
        """The strided deadline test shared by the hot-path charges."""
        self._clock_countdown -= 1
        if self._clock_countdown <= 0:
            self._clock_countdown = CLOCK_STRIDE
            if self._deadline is not None and time.monotonic() >= self._deadline:
                self._exhaust("timeout", self.timeout)

    # -- charges (one per unit of governed work) -----------------------

    def charge_states(self, total: int) -> None:
        """Record the automaton's state count (called per interned state
        with the running total, so the cap is exact)."""
        self.checks += 1
        self.states = total
        if self.max_states is not None and total > self.max_states:
            self._exhaust("max_states", self.max_states)
        self._tick_clock()

    def charge_digraph(self, steps: int) -> None:
        """Record *steps* units of digraph traversal work (frame visits
        plus edges inspected)."""
        self.checks += 1
        self.digraph_steps += steps
        if (
            self.max_digraph_steps is not None
            and self.digraph_steps > self.max_digraph_steps
        ):
            self._exhaust("max_digraph_steps", self.max_digraph_steps)
        self._tick_clock()

    def charge_tokens(self, n: int = 1) -> None:
        """Record *n* input tokens consumed by the parse engine."""
        self.checks += 1
        self.tokens += n
        if self.max_tokens is not None and self.tokens > self.max_tokens:
            self._exhaust("max_tokens", self.max_tokens)
        self._tick_clock()

    def charge_parse_step(self) -> None:
        """Record one parser action (shift, reduce or error check)."""
        self.checks += 1
        self.parse_steps += 1
        if (
            self.max_parse_steps is not None
            and self.parse_steps > self.max_parse_steps
        ):
            self._exhaust("max_parse_steps", self.max_parse_steps)
        self._tick_clock()

    def tick(self) -> None:
        """One unit of otherwise-uncapped governed work (relation
        construction, table fill, LA unions): deadline-only, strided."""
        self.checks += 1
        self._tick_clock()

    # -- failure & observability ---------------------------------------

    def _exhaust(self, resource: str, limit: float) -> None:
        self.exceeded = True
        self.publish()
        raise BudgetExceeded(
            self.phase, resource, limit, self.elapsed(), self.progress()
        )

    def publish(self) -> None:
        """Absorb the governance counters into the instrument layer
        (``budget.checks`` / ``budget.exceeded``), as deltas so repeated
        calls at phase boundaries never double-count."""
        if not instrument.enabled():
            return
        delta = self.checks - self._published_checks
        if delta:
            instrument.count("budget.checks", delta)
            self._published_checks = self.checks
        if self.exceeded and not self._published_exceeded:
            instrument.count("budget.exceeded")
            self._published_exceeded = True

"""The Digraph algorithm of DeRemer & Pennello.

Given a set of nodes ``X``, a relation ``R ⊆ X × X`` and an initial set
function ``F: X -> sets``, Digraph computes the smallest function ``F*``
satisfying::

    F*(x) = F(x) ∪ ⋃ { F*(y) : x R y }

i.e. the union of F over everything reachable from x.  The paper evaluates
both its `reads` and `includes` unions with this single primitive.

The algorithm is a depth-first traversal that detects strongly connected
components on the fly (in the manner of Tarjan / Eve & Kurki-Suonio): all
nodes of an SCC necessarily share one result set, so the set is computed
once per component and assigned to every member.  Each edge of R is
inspected exactly once, which is what makes the overall look-ahead
computation linear in the size of the relations (plus set-union work) —
the paper's headline efficiency claim.

Sets here are **int bitmasks** (see :mod:`repro.core.bitset`); callers that
want Python sets wrap the result.  The traversal is iterative so deep
relation chains cannot overflow Python's recursion limit (relation chains
grow with grammar size in e.g. the nullable-chain benchmark family).

Two implementations share this module:

- :func:`digraph` — the generic version over arbitrary hashable nodes
  and a successor callable.  Retained as the ablation oracle
  (``bench_ablation_digraph``) and for callers outside the hot pipeline.
- :func:`digraph_int` — the integer-core fast path used by the LALR
  passes: nodes are ``0..n-1``, the relation is a CSR adjacency
  (flat ``edges`` + ``offsets`` arrays), and the traversal state lives
  in flat lists indexed by node — no dict hashing anywhere.  Both
  implementations perform the *identical* traversal (same edge visit
  order, same union counts), which the equivalence property tests
  assert.

The companion :func:`naive_closure` is the same specification computed by
repeated relaxation; it exists purely as the ablation baseline
(``bench_ablation_digraph``) and as an oracle for property tests.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Sequence,
    Tuple,
    TypeVar,
)

from . import instrument

Node = TypeVar("Node", bound=Hashable)

#: Sentinel "visited, finished" depth — any real stack depth is smaller.
_INFINITY = float("inf")


class DigraphStats:
    """Operation counters for the machine-independent cost reporting."""

    __slots__ = ("nodes", "edges", "unions", "nontrivial_sccs", "scc_members")

    def __init__(self) -> None:
        self.nodes = 0
        self.edges = 0
        self.unions = 0
        self.nontrivial_sccs = 0
        self.scc_members = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "unions": self.unions,
            "nontrivial_sccs": self.nontrivial_sccs,
            "scc_members": self.scc_members,
        }


def digraph(
    nodes: Sequence[Node],
    relation: Callable[[Node], Iterable[Node]],
    initial: Callable[[Node], int],
    stats: "DigraphStats | None" = None,
    budget=None,
) -> Tuple[Dict[Node, int], List[Tuple[Node, ...]]]:
    """Run the Digraph algorithm.

    Args:
        nodes: All nodes of X (the traversal starts from each unvisited one).
        relation: ``relation(x)`` yields the successors of x under R.
            It may be called more than once per node; results must be
            stable.
        initial: ``initial(x)`` is F(x) as an int bitmask.
        stats: Optional operation counter to fill in.
        budget: Optional :class:`repro.core.budget.Budget`; charged one
            digraph step per frame visit plus one per edge inspected.

    Returns:
        ``(result, nontrivial_sccs)`` where ``result[x]`` is the bitmask
        F*(x) and *nontrivial_sccs* lists every SCC of R with more than one
        node or a self-loop.  (The paper's LR(k)/LALR(1) diagnostics hang
        off these components.)
    """
    observing = instrument.enabled()
    if observing and stats is None:
        stats = DigraphStats()
    before = stats.as_dict() if observing else None

    depth: Dict[Node, float] = {}
    result: Dict[Node, int] = {}
    stack: List[Node] = []
    nontrivial: List[Tuple[Node, ...]] = []

    if stats is not None:
        stats.nodes += len(nodes)

    for root in nodes:
        if root in depth:
            continue
        # Iterative DFS.  Each frame is [node, successor_iterator].
        stack.append(root)
        depth[root] = len(stack)
        result[root] = initial(root)
        frames: List[List] = [[root, iter(relation(root)), len(stack), False]]
        while frames:
            frame = frames[-1]
            node, successors, node_depth = frame[0], frame[1], frame[2]
            advanced = False
            scanned = 0
            for successor in successors:
                scanned += 1
                if stats is not None:
                    stats.edges += 1
                if successor == node:
                    frame[3] = True  # self-loop: still a nontrivial SCC
                if successor not in depth:
                    stack.append(successor)
                    depth[successor] = len(stack)
                    result[successor] = initial(successor)
                    frames.append(
                        [successor, iter(relation(successor)), len(stack), False]
                    )
                    advanced = True
                    break
                # Finished nodes have depth _INFINITY, which never lowers
                # ours; active ones propagate their stack depth.
                if depth[successor] < depth[node]:
                    depth[node] = depth[successor]
                result[node] |= result[successor]
                if stats is not None:
                    stats.unions += 1
            if budget is not None:
                budget.charge_digraph(scanned + 1)
            if advanced:
                continue
            frames.pop()
            if frames:
                parent = frames[-1][0]
                if depth[node] < depth[parent]:
                    depth[parent] = depth[node]
                result[parent] |= result[node]
                if stats is not None:
                    stats.unions += 1
            if depth[node] == node_depth:
                # node is the root of an SCC: everything above it on the
                # stack (inclusive) is one component sharing result[node].
                component: List[Node] = []
                shared = result[node]
                while True:
                    member = stack.pop()
                    depth[member] = _INFINITY
                    result[member] = shared
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or frame[3]:
                    nontrivial.append(tuple(component))
                    if stats is not None:
                        stats.nontrivial_sccs += 1
                        stats.scc_members += len(component)
    if observing:
        # stats may be shared across calls; absorb only this call's delta.
        after = stats.as_dict()
        instrument.absorb(
            "digraph", {key: after[key] - before[key] for key in after}
        )
    return result, nontrivial


def digraph_int(
    num_nodes: int,
    offsets: Sequence[int],
    edges: Sequence[int],
    initial: Sequence[int],
    stats: "DigraphStats | None" = None,
    budget=None,
) -> Tuple[List[int], List[Tuple[int, ...]]]:
    """The Digraph algorithm over dense integer nodes ``0..num_nodes-1``.

    This is the hot-path twin of :func:`digraph`: the relation is given
    as CSR adjacency (successors of node ``x`` are
    ``edges[offsets[x]:offsets[x+1]]``), F as a mask per node, and all
    traversal state (stack depths, results) lives in flat lists indexed
    by node — the inner loop performs no hashing at all.

    The traversal mirrors :func:`digraph` operation for operation (same
    edge inspection order, same union count, same SCC output up to node
    naming), so :class:`DigraphStats` from either implementation are
    directly comparable.

    Returns:
        ``(result, nontrivial_sccs)`` where ``result[x]`` is the bitmask
        F*(x) and *nontrivial_sccs* lists node-index tuples.
    """
    observing = instrument.enabled()
    if observing and stats is None:
        stats = DigraphStats()
    before = stats.as_dict() if observing else None

    unvisited = 0
    finished = num_nodes + 2  # larger than any live stack depth
    depth: List[int] = [unvisited] * num_nodes
    result: List[int] = list(initial)
    stack: List[int] = []
    nontrivial: List[Tuple[int, ...]] = []

    counting = stats is not None
    if counting:
        stats.nodes += num_nodes

    for root in range(num_nodes):
        if depth[root]:
            continue
        stack.append(root)
        depth[root] = len(stack)
        # Each frame: [node, next_edge_ptr, node_depth, self_loop_seen].
        frames: List[List[int]] = [[root, offsets[root], len(stack), 0]]
        while frames:
            frame = frames[-1]
            node, node_depth = frame[0], frame[2]
            edge_ptr = frame[1]
            begin_ptr = edge_ptr
            edge_end = offsets[node + 1]
            node_depth_now = depth[node]
            node_result = result[node]
            advanced = False
            while edge_ptr < edge_end:
                successor = edges[edge_ptr]
                edge_ptr += 1
                if counting:
                    stats.edges += 1
                if successor == node:
                    frame[3] = 1  # self-loop: still a nontrivial SCC
                successor_depth = depth[successor]
                if not successor_depth:
                    stack.append(successor)
                    depth[successor] = len(stack)
                    frame[1] = edge_ptr
                    depth[node] = node_depth_now
                    result[node] = node_result
                    frames.append([successor, offsets[successor], len(stack), 0])
                    advanced = True
                    break
                # Finished nodes carry `finished`, which never lowers
                # ours; active ones propagate their stack depth.
                if successor_depth < node_depth_now:
                    node_depth_now = successor_depth
                node_result |= result[successor]
                if counting:
                    stats.unions += 1
            if budget is not None:
                # One step per frame visit plus one per edge inspected:
                # bounded by 2·nodes + edges, so a cap stays linear in
                # the relation size it is meant to govern.
                budget.charge_digraph(edge_ptr - begin_ptr + 1)
            if advanced:
                continue
            depth[node] = node_depth_now
            result[node] = node_result
            frames.pop()
            if frames:
                parent = frames[-1][0]
                if node_depth_now < depth[parent]:
                    depth[parent] = node_depth_now
                result[parent] |= node_result
                if counting:
                    stats.unions += 1
            if node_depth_now == node_depth:
                # node is the root of an SCC: everything above it on the
                # stack (inclusive) is one component sharing result[node].
                component: List[int] = []
                shared = node_result
                while True:
                    member = stack.pop()
                    depth[member] = finished
                    result[member] = shared
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or frame[3]:
                    nontrivial.append(tuple(component))
                    if counting:
                        stats.nontrivial_sccs += 1
                        stats.scc_members += len(component)
    if observing:
        after = stats.as_dict()
        instrument.absorb(
            "digraph", {key: after[key] - before[key] for key in after}
        )
    return result, nontrivial


def build_reverse_adjacency(
    num_nodes: int, offsets: Sequence[int], edges: Sequence[int]
) -> List[List[int]]:
    """Per-node predecessor lists for a CSR relation.

    The reverse view :func:`digraph_int_incremental` sweeps is the one
    O(edges) artifact of that function; callers that splice the forward
    CSR between calls (see :mod:`repro.core.relations_delta`) cache this
    and patch only the changed rows, so repeated incremental passes stop
    paying the full-graph rebuild.  Entry order within a predecessor
    list is irrelevant — reachability is a set.
    """
    reverse: List[List[int]] = [[] for _ in range(num_nodes)]
    for node in range(num_nodes):
        for ptr in range(offsets[node], offsets[node + 1]):
            reverse[edges[ptr]].append(node)
    return reverse


def digraph_int_incremental(
    num_nodes: int,
    offsets: Sequence[int],
    edges: Sequence[int],
    initial: Sequence[int],
    old_result: Sequence[int],
    seed_nodes: Sequence[int],
    stats: "DigraphStats | None" = None,
    reverse: "List[List[int]] | None" = None,
) -> Tuple[List[int], List[Tuple[int, ...]], bytearray]:
    """Patch a previous :func:`digraph_int` result after a localized change.

    *seed_nodes* are the nodes whose input changed — a different F
    (``initial``) value, or a different successor row.  Everything that
    can reach a seed through the relation is **dirty** (its F* may have
    changed); everything else keeps its old F* by definition of the
    least fixed point, because F*(x) depends only on the F values and
    edges along paths out of x.

    The dirty region is found by a reverse-reachability sweep — the
    condensation-DAG view of the same fact: a changed SCC invalidates
    exactly its ancestors in the condensation, and SCC members are
    uniformly dirty or clean.  The dirty subgraph is then solved with
    the ordinary :func:`digraph_int`, folding each clean successor's
    (still valid) old F* into the sub-seed of the dirty node that reads
    it, and the solutions are patched over a copy of *old_result*.  The
    least fixed point is unique, so the patched list is element-wise
    identical to a from-scratch run.

    Returns:
        ``(result, dirty_sccs, dirty)`` — the patched masks, the
        nontrivial SCCs found *within the dirty subgraph* (caller merges
        them with the surviving all-clean SCCs of the old run; the
        combined list can be ordered differently than a from-scratch
        run's, so compare SCC lists as sets), and the per-node dirty
        flags.
    """
    dirty = bytearray(num_nodes)
    if not seed_nodes:
        return list(old_result), [], dirty

    # Reverse adjacency (caller-cached or built here), then BFS
    # backwards from the seeds.
    if reverse is None:
        reverse = build_reverse_adjacency(num_nodes, offsets, edges)
    worklist: List[int] = []
    for seed in seed_nodes:
        if not dirty[seed]:
            dirty[seed] = 1
            worklist.append(seed)
    i = 0
    while i < len(worklist):
        node = worklist[i]
        i += 1
        for predecessor in reverse[node]:
            if not dirty[predecessor]:
                dirty[predecessor] = 1
                worklist.append(predecessor)

    # Solve the dirty subgraph.  Clean successors are frozen: their old
    # F* folds into the dirty reader's sub-seed.
    dirty_list = [node for node in range(num_nodes) if dirty[node]]
    sub_index = {node: i for i, node in enumerate(dirty_list)}
    sub_offsets: List[int] = [0]
    sub_edges: List[int] = []
    sub_initial: List[int] = []
    for node in dirty_list:
        mask = initial[node]
        for ptr in range(offsets[node], offsets[node + 1]):
            successor = edges[ptr]
            if dirty[successor]:
                sub_edges.append(sub_index[successor])
            else:
                mask |= old_result[successor]
        sub_initial.append(mask)
        sub_offsets.append(len(sub_edges))
    sub_result, sub_sccs = digraph_int(
        len(dirty_list), sub_offsets, sub_edges, sub_initial, stats
    )

    result = list(old_result)
    for i, node in enumerate(dirty_list):
        result[node] = sub_result[i]
    dirty_sccs = [
        tuple(dirty_list[member] for member in component)
        for component in sub_sccs
    ]
    return result, dirty_sccs, dirty


def naive_closure(
    nodes: Sequence[Node],
    relation: Callable[[Node], Iterable[Node]],
    initial: Callable[[Node], int],
    stats: "DigraphStats | None" = None,
    reverse_edges: bool = False,
) -> Dict[Node, int]:
    """Relaxation-to-fixpoint evaluation of the same specification.

    This is how pre-Digraph implementations evaluated the unions: keep
    sweeping ``F*(x) |= F*(y) for x R y`` until nothing changes.  Worst
    case it re-scans the whole relation once per "level" of the relation
    graph, i.e. O(edges × diameter) unions versus Digraph's O(edges).
    Used as the ablation baseline and as a test oracle.

    The sweep cost depends on how the edge order aligns with the flow
    direction; *reverse_edges* flips the scan order so benchmarks can
    bracket the best case (aligned: 2 sweeps) against the adversarial
    case (anti-aligned: one sweep per propagation level).
    """
    result: Dict[Node, int] = {node: initial(node) for node in nodes}
    edges: List[Tuple[Node, Node]] = [
        (x, y) for x in nodes for y in relation(x)
    ]
    if reverse_edges:
        edges.reverse()
    if stats is not None:
        stats.nodes += len(nodes)
        stats.edges += len(edges)
    changed = True
    while changed:
        changed = False
        for x, y in edges:
            merged = result[x] | result[y]
            if stats is not None:
                stats.unions += 1
            if merged != result[x]:
                result[x] = merged
                changed = True
    return result

"""The paper's contribution: DeRemer-Pennello LALR(1) look-ahead sets."""

from . import instrument, parallel
from .bitset import TerminalVocabulary
from .budget import Budget, BudgetExceeded
from .digraph import DigraphStats, digraph, naive_closure
from .instrument import ProfileCollector, profile, span
from .lalr import LalrAnalysis, compute_lookaheads
from .parallel import parallel_imap, parallel_map
from .relations import LalrRelations

__all__ = [
    "Budget",
    "BudgetExceeded",
    "DigraphStats",
    "LalrAnalysis",
    "LalrRelations",
    "ProfileCollector",
    "TerminalVocabulary",
    "compute_lookaheads",
    "digraph",
    "instrument",
    "naive_closure",
    "parallel",
    "parallel_imap",
    "parallel_map",
    "profile",
    "span",
]

"""The paper's contribution: DeRemer-Pennello LALR(1) look-ahead sets."""

from . import instrument
from .bitset import TerminalVocabulary
from .digraph import DigraphStats, digraph, naive_closure
from .instrument import ProfileCollector, profile, span
from .lalr import LalrAnalysis, compute_lookaheads
from .relations import LalrRelations

__all__ = [
    "DigraphStats",
    "LalrAnalysis",
    "LalrRelations",
    "ProfileCollector",
    "TerminalVocabulary",
    "compute_lookaheads",
    "digraph",
    "instrument",
    "naive_closure",
    "profile",
    "span",
]

"""The paper's contribution: DeRemer-Pennello LALR(1) look-ahead sets."""

from .bitset import TerminalVocabulary
from .digraph import DigraphStats, digraph, naive_closure
from .lalr import LalrAnalysis, compute_lookaheads
from .relations import LalrRelations

__all__ = [
    "DigraphStats",
    "LalrAnalysis",
    "LalrRelations",
    "TerminalVocabulary",
    "compute_lookaheads",
    "digraph",
    "naive_closure",
]

"""A deterministic multiprocessing batch executor.

The fuzz campaigns, corpus benches and the ``repro batch`` verb all share
the same workload shape: a long list of independent, pure tasks whose
*combined* result must be reproducible bit for bit.  This module provides
that as one primitive — map a picklable function over picklable tasks
across ``workers`` forked processes and hand the results back **in task
order**, so the merged output is identical no matter how many workers ran
or how the OS scheduled them.

Design rules:

- **Determinism lives in task order, not scheduling.**  Results are
  returned (``parallel_map``) or yielded (``parallel_imap``) in the order
  tasks were submitted; callers derive any per-task randomness from the
  task itself (see :func:`derive_seed`), never from worker identity.
- **Serial is the reference implementation.**  ``workers <= 1``, a single
  task, platforms without ``fork``, or a pool that fails to start all
  fall back to a plain in-process loop — same results, no surprises in
  CI sandboxes or on Windows/macOS spawn-only configurations.
- **Tasks travel, objects don't.**  Task payloads and results should be
  plain data (ints, strings, dicts); callers rebuild rich objects (
  grammars, failures) on the receiving side.  This keeps the executor
  honest about what crosses the process boundary.

``parallel_imap`` yields results lazily, so drivers with a wall-clock
budget can stop consuming early; the pool is terminated when the
generator is closed, abandoning unconsumed tasks.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Iterator, List, Sequence, TypeVar

from . import instrument

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Mixes a base seed and task index into a per-task seed.  The odd prime
#: keeps neighbouring bases from producing overlapping seed sequences.
_SEED_STRIDE = 1_000_003


def derive_seed(base_seed: int, index: int) -> int:
    """The deterministic per-task seed for task *index* of a batch."""
    return (base_seed * _SEED_STRIDE + index) % (2**31)


def fork_available() -> bool:
    """Whether this platform can fork worker processes at all."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms only
        return False


def default_workers(cap: int = 8) -> int:
    """A sensible pool size for long-running drivers: the CPU count,
    capped (table builds stop scaling well past a handful of cores)."""
    try:
        count = multiprocessing.cpu_count()
    except NotImplementedError:  # pragma: no cover - exotic platforms only
        count = 1
    return max(1, min(count, cap))


def effective_workers(workers: int, n_tasks: int) -> int:
    """The worker count actually used: clamped to the task count, and 1
    (serial) when parallelism is disabled or unsupported."""
    if workers <= 1 or n_tasks <= 1 or not fork_available():
        return 1
    return min(workers, n_tasks)


def chunked(items: Sequence, size: int) -> List[list]:
    """Split *items* into consecutive chunks of at most *size*."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _pool(workers: int):
    """A fork-context pool, or None when one cannot be started."""
    try:
        return multiprocessing.get_context("fork").Pool(workers)
    except OSError:  # pragma: no cover - resource exhaustion only
        return None


def _shutdown(pool) -> None:
    """Tear a pool down completely, even after a mid-task terminate.

    ``Pool.join`` alone is not enough once ``terminate`` has killed
    workers mid-task: the worker ``Process`` handles stay open (their
    pipes and sentinel fds with them) until they are individually
    joined and closed, and an unreaped child lingers in
    ``active_children()`` where the resource tracker will flag its
    semaphores at interpreter exit.  Deadline-cancelled sweeps hit this
    path on every run, so the teardown is explicit: terminate, join the
    pool machinery, then join/close every worker process."""
    pool.terminate()
    pool.join()
    for proc in getattr(pool, "_pool", []):
        try:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker only
                proc.kill()
                proc.join(timeout=5.0)
            proc.close()
        except (ValueError, OSError):  # pragma: no cover - already closed
            pass
    # Reap any straggling zombies so active_children() is empty again.
    multiprocessing.active_children()


def parallel_map(
    fn: "Callable[[Task], Result]",
    tasks: "Iterable[Task]",
    workers: int = 1,
    chunksize: int = 1,
) -> "List[Result]":
    """``[fn(t) for t in tasks]``, fanned across *workers* processes.

    Results come back in task order.  An exception raised by *fn* in a
    worker propagates to the caller, mirroring the serial loop.
    """
    task_list = list(tasks)
    n = effective_workers(workers, len(task_list))
    if instrument.enabled():
        instrument.count("parallel.tasks", len(task_list))
        instrument.count("parallel.worker_batches")
    if n <= 1:
        return [fn(task) for task in task_list]
    pool = _pool(n)
    if pool is None:  # pragma: no cover - resource exhaustion only
        return [fn(task) for task in task_list]
    try:
        return pool.map(fn, task_list, chunksize)
    finally:
        _shutdown(pool)


def parallel_imap(
    fn: "Callable[[Task], Result]",
    tasks: "Iterable[Task]",
    workers: int = 1,
    budget=None,
) -> "Iterator[Result]":
    """Lazily yield ``fn(t)`` per task, in task order.

    Closing the generator early (``break`` in the consuming loop) tears
    the pool down and abandons unstarted tasks — the hook wall-clock-
    budgeted drivers use to stop a sweep mid-flight.

    A *budget* (:class:`repro.core.budget.Budget`) with a timeout makes
    the executor enforce the deadline itself: the serial path polls
    between tasks, and the pool path waits for each result at most the
    remaining time — when the deadline passes mid-task the pool is
    terminated (cancelling the in-flight workers) and the generator
    stops gracefully, exactly like a caller breaking out of the loop.
    Results already completed in task order are still yielded.
    """
    task_list = list(tasks)
    n = effective_workers(workers, len(task_list))
    if instrument.enabled():
        instrument.count("parallel.tasks", len(task_list))
        instrument.count("parallel.worker_batches")
    if n <= 1:
        for task in task_list:
            if budget is not None and budget.expired():
                return
            yield fn(task)
        return
    pool = _pool(n)
    if pool is None:  # pragma: no cover - resource exhaustion only
        for task in task_list:
            if budget is not None and budget.expired():
                return
            yield fn(task)
        return
    try:
        results = pool.imap(fn, task_list)
        while True:
            if budget is None:
                try:
                    result = results.next()
                except StopIteration:
                    break
            else:
                remaining = budget.remaining()
                if remaining is not None and remaining <= 0:
                    return
                try:
                    # IMapIterator.next honours a timeout, which is what
                    # lets the deadline cancel an in-flight worker task.
                    result = results.next(timeout=remaining)
                except multiprocessing.TimeoutError:
                    return
                except StopIteration:
                    break
            yield result
        pool.close()
    finally:
        _shutdown(pool)

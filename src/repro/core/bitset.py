"""Terminal sets as machine integers.

The DeRemer–Pennello pipeline unions many small sets of terminals.  The
paper's implementation used bit vectors; in Python the natural equivalent
is arbitrary-precision ``int`` used as a bitmask, which makes union a
single ``|`` — the cheapest set operation the interpreter offers.

:class:`TerminalVocabulary` fixes the bit position of every terminal of a
grammar and converts between masks and symbol sets.  Masks are plain ints,
so they stay hashable, comparable and allocation-light; only at the API
boundary (LA sets returned to users, table construction) are they widened
back to frozensets of :class:`~repro.grammar.symbols.Symbol`.

The ablation benchmark ``bench_ablation_bitset`` measures this choice
against a frozenset-based implementation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List

from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol

EMPTY = 0


def _popcount_fallback(mask: int) -> int:
    """Popcount for Python < 3.10, where ``int.bit_count`` is missing."""
    return bin(mask).count("1")


#: Fastest available popcount: ``int.bit_count`` is a single C call on
#: Python >= 3.10; the string-formatting fallback is kept (and tested)
#: for older interpreters.
if hasattr(int, "bit_count"):
    popcount = int.bit_count
else:  # pragma: no cover - exercised directly via _popcount_fallback
    popcount = _popcount_fallback


class TerminalVocabulary:
    """Bidirectional mapping terminal <-> bit position for one grammar."""

    def __init__(self, grammar: Grammar):
        self.terminals: List[Symbol] = list(grammar.terminals)
        self._bit_of: Dict[Symbol, int] = {
            terminal: position for position, terminal in enumerate(self.terminals)
        }

    def __len__(self) -> int:
        return len(self.terminals)

    def bit(self, terminal: Symbol) -> int:
        """The single-bit mask for *terminal*."""
        return 1 << self._bit_of[terminal]

    def mask(self, terminals: Iterable[Symbol]) -> int:
        """The mask with the bits of all *terminals* set."""
        result = 0
        for terminal in terminals:
            result |= 1 << self._bit_of[terminal]
        return result

    def symbols(self, mask: int) -> FrozenSet[Symbol]:
        """The set of terminals whose bits are set in *mask*."""
        return frozenset(self.iter_symbols(mask))

    def iter_symbols(self, mask: int) -> Iterator[Symbol]:
        position = 0
        while mask:
            if mask & 1:
                yield self.terminals[position]
            mask >>= 1
            position += 1

    def count(self, mask: int) -> int:
        """Number of terminals in *mask* (popcount)."""
        return popcount(mask)

    def contains(self, mask: int, terminal: Symbol) -> bool:
        return bool(mask >> self._bit_of[terminal] & 1)

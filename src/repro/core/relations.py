"""The four relations of DeRemer & Pennello: DR, reads, includes, lookback.

All are defined over *nonterminal transitions* of the LR(0) automaton —
pairs ``(p, A)`` such that ``goto(p, A)`` is defined:

- ``DR(p, A)``: terminals directly readable after traversing the
  transition: ``{ t : goto(goto(p,A), t) defined }``.
- ``(p, A) reads (r, C)``: with ``r = goto(p, A)``, the automaton can hop
  over a nullable ``C`` out of ``r`` and keep reading — so whatever can be
  read after ``(r, C)`` can also follow ``(p, A)``.
- ``(p, A) includes (p', B)``: there is a production ``B -> β A γ`` with
  ``γ =>* ε`` and ``p' --β--> p``; a reduction context for ``B`` at ``p'``
  is therefore also one for this ``A`` transition.
- ``(q, A -> ω) lookback (p, A)``: ``p --ω--> q``; when state ``q``
  reduces by ``A -> ω`` the automaton pops back to some such ``p`` and
  takes its ``A`` transition, so LA(q, A -> ω) collects Follow(p, A).

`includes` and `lookback` are computed together by a single forward walk
along each production's right-hand side from each transition source — the
same trick later adopted by Bison's implementation of this paper.

Everything here is pure relation *construction*; the unions over the
relations happen in :mod:`repro.core.lalr` via the Digraph algorithm.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..analysis.nullable import nullable_nonterminals
from ..automaton.lr0 import LR0Automaton
from ..grammar.symbols import Symbol
from . import instrument
from .bitset import TerminalVocabulary

#: A nonterminal transition: (source state id, nonterminal symbol).
Transition = Tuple[int, Symbol]

#: A reduction site: (state id, production index).
ReductionSite = Tuple[int, int]


class LalrRelations:
    """All relations needed for the LALR(1) look-ahead computation.

    Construction walks the LR(0) automaton once; the resulting adjacency
    maps are immutable-by-convention and consumed by
    :class:`repro.core.lalr.LalrAnalysis`.

    Attributes:
        transitions: All nonterminal transitions, in deterministic order.
        dr: ``dr[(p, A)]`` — the DR set as a terminal bitmask.
        reads: ``reads[(p, A)]`` — successor transitions under `reads`.
        includes: ``includes[(p, A)]`` — successor transitions under
            `includes`.
        lookback: ``lookback[(q, prod)]`` — the transitions whose Follow
            sets feed LA(q, prod).
    """

    def __init__(self, automaton: LR0Automaton, vocabulary: "TerminalVocabulary | None" = None):
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.vocabulary = vocabulary or TerminalVocabulary(self.grammar)
        self.nullable: FrozenSet[Symbol] = nullable_nonterminals(self.grammar)

        self.transitions: List[Transition] = list(automaton.nonterminal_transitions)
        self._transition_set = set(self.transitions)

        self.dr: Dict[Transition, int] = {}
        self.reads: Dict[Transition, Tuple[Transition, ...]] = {}
        self.includes: Dict[Transition, List[Transition]] = {
            t: [] for t in self.transitions
        }
        self.lookback: Dict[ReductionSite, List[Transition]] = {}

        with instrument.span("lalr.relations"):
            self._compute_dr_and_reads()
            self._compute_includes_and_lookback()
        if instrument.enabled():
            instrument.absorb("relations", self.stats())

    # -- DR and reads --------------------------------------------------

    def _compute_dr_and_reads(self) -> None:
        automaton = self.automaton
        vocabulary = self.vocabulary
        nullable = self.nullable
        for transition in self.transitions:
            state, symbol = transition
            successor = automaton.goto(state, symbol)
            assert successor is not None
            successor_state = automaton.states[successor]
            mask = 0
            reads_edges: List[Transition] = []
            for out_symbol in successor_state.transitions:
                if out_symbol.is_terminal:
                    mask |= vocabulary.bit(out_symbol)
                elif out_symbol in nullable:
                    reads_edges.append((successor, out_symbol))
            self.dr[transition] = mask
            self.reads[transition] = tuple(reads_edges)

    # -- includes and lookback ---------------------------------------------

    def _compute_includes_and_lookback(self) -> None:
        """One forward walk per (transition, production of its nonterminal).

        From ``(p', B)`` and production ``B -> x1 ... xn`` we walk states
        ``p' = s0 --x1--> s1 --x2--> ... --xn--> sn``.  At position i where
        ``x_{i+1}`` is a nonterminal and ``x_{i+2} ... xn`` are all
        nullable, ``(s_i, x_{i+1}) includes (p', B)``.  At the end,
        ``(s_n, B -> x1...xn) lookback (p', B)``.
        """
        automaton = self.automaton
        grammar = self.grammar
        nullable = self.nullable

        # nullable_suffix[i] of a rhs: True iff rhs[i:] =>* epsilon.
        for transition in self.transitions:
            source, lhs = transition
            for production in grammar.productions_for(lhs):
                rhs = production.rhs
                suffix_nullable = [False] * (len(rhs) + 1)
                suffix_nullable[len(rhs)] = True
                for i in range(len(rhs) - 1, -1, -1):
                    suffix_nullable[i] = (
                        rhs[i].is_nonterminal
                        and rhs[i] in nullable
                        and suffix_nullable[i + 1]
                    )

                state = source
                for i, symbol in enumerate(rhs):
                    if symbol.is_nonterminal and suffix_nullable[i + 1]:
                        edge = (state, symbol)
                        # goto(state, symbol) is defined whenever the walk
                        # continues, but guard for robustness.
                        if edge in self._transition_set:
                            self.includes[edge].append(transition)
                    next_state = automaton.goto(state, symbol)
                    assert next_state is not None, (
                        "automaton is missing a transition the closure implies"
                    )
                    state = next_state
                self.lookback.setdefault((state, production.index), []).append(
                    transition
                )

    # -- reporting -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "nonterminal_transitions": len(self.transitions),
            "dr_bits": sum(self.vocabulary.count(m) for m in self.dr.values()),
            "reads_edges": sum(len(e) for e in self.reads.values()),
            "includes_edges": sum(len(e) for e in self.includes.values()),
            "lookback_edges": sum(len(e) for e in self.lookback.values()),
            "reduction_sites": len(self.lookback),
        }

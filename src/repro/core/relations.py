"""The four relations of DeRemer & Pennello: DR, reads, includes, lookback.

All are defined over *nonterminal transitions* of the LR(0) automaton —
pairs ``(p, A)`` such that ``goto(p, A)`` is defined:

- ``DR(p, A)``: terminals directly readable after traversing the
  transition: ``{ t : goto(goto(p,A), t) defined }``.
- ``(p, A) reads (r, C)``: with ``r = goto(p, A)``, the automaton can hop
  over a nullable ``C`` out of ``r`` and keep reading — so whatever can be
  read after ``(r, C)`` can also follow ``(p, A)``.
- ``(p, A) includes (p', B)``: there is a production ``B -> β A γ`` with
  ``γ =>* ε`` and ``p' --β--> p``; a reduction context for ``B`` at ``p'``
  is therefore also one for this ``A`` transition.
- ``(q, A -> ω) lookback (p, A)``: ``p --ω--> q``; when state ``q``
  reduces by ``A -> ω`` the automaton pops back to some such ``p`` and
  takes its ``A`` transition, so LA(q, A -> ω) collects Follow(p, A).

`includes` and `lookback` are computed together by a single forward walk
along each production's right-hand side from each transition source — the
same trick later adopted by Bison's implementation of this paper.

**Representation (the integer core).**  A nonterminal transition is a
single packed int ``state_id * num_nonterminals + nt_id``; the node set
is the dense index ``0..n_nodes-1`` into :attr:`LalrRelations.packed`.
`reads` and `includes` are CSR-style adjacency lists — one flat
``array('i')`` of successor node indices plus an offsets array — which
is exactly the shape :func:`repro.core.digraph.digraph_int` consumes
without hashing anything.  DR sets are bitmasks whose bit positions are
terminal IDs (identical to :class:`~repro.core.bitset.TerminalVocabulary`
bit positions by construction).

The Symbol-keyed attributes of the pre-integer era (``transitions``,
``dr``, ``reads``, ``includes``, ``lookback``) remain available as
lazily built views for diagnostics, rendering, the NQLALR baseline and
tests; the hot pipeline never touches them.

Everything here is pure relation *construction*; the unions over the
relations happen in :mod:`repro.core.lalr` via the Digraph algorithm.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, List, Tuple

from ..analysis.nullable import nullable_nonterminals
from ..automaton.lr0 import LR0Automaton
from ..grammar.symbols import Symbol
from . import instrument
from .bitset import TerminalVocabulary

#: A nonterminal transition: (source state id, nonterminal symbol).
Transition = Tuple[int, Symbol]

#: A reduction site: (state id, production index).
ReductionSite = Tuple[int, int]


class LalrRelations:
    """All relations needed for the LALR(1) look-ahead computation.

    Construction walks the LR(0) automaton once; the resulting arrays
    are immutable-by-convention and consumed by
    :class:`repro.core.lalr.LalrAnalysis`.

    Integer-core attributes (the pipeline's working set):

    - ``n_nodes`` / ``packed``: node count and the packed transition id
      (``state * num_nonterminals + nt_id``) per dense node index.
    - ``dr_masks``: per-node DR bitmask (bit position = terminal ID).
    - ``reads_offsets`` / ``reads_adj``: CSR adjacency of `reads`.
    - ``includes_offsets`` / ``includes_adj``: CSR adjacency of `includes`.
    - ``lookback_nodes``: reduction site -> list of node indices.

    Symbol-level views (lazy; identical content to the pre-refactor
    dicts): ``transitions``, ``dr``, ``reads``, ``includes``,
    ``lookback``.
    """

    def __init__(
        self,
        automaton: LR0Automaton,
        vocabulary: "TerminalVocabulary | None" = None,
        budget=None,
        record_walks: bool = False,
    ):
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.ids = self.grammar.ids
        self.vocabulary = vocabulary or TerminalVocabulary(self.grammar)
        self.nullable: FrozenSet[Symbol] = nullable_nonterminals(self.grammar)
        self.num_nonterminals = self.ids.num_nonterminals

        self.packed: "array" = automaton.nonterminal_transition_ids
        self.n_nodes = len(self.packed)
        #: packed transition id -> dense node index.
        self.node_index: Dict[int, int] = {
            p: i for i, p in enumerate(self.packed)
        }

        self.dr_masks: List[int] = []
        self.reads_offsets: "array" = array("i")
        self.reads_adj: "array" = array("i")
        self.includes_offsets: "array" = array("i")
        self.includes_adj: "array" = array("i")
        self.lookback_nodes: Dict[ReductionSite, List[int]] = {}

        # Per-node walk memos for the incremental pipeline (recorded only
        # when *record_walks* is set — sessions set it, one-shot callers
        # don't pay for it).  For node n:
        #   walk_edges[n]  — includes-edge targets, in emission order;
        #   walk_sites[n]  — the lookback sites n feeds, one per production;
        #   walk_states[n] — every state any of n's walks touched.
        # An unchanged walk is replayed by appending these verbatim.
        self.walk_edges: "List[List[int]] | None" = None
        self.walk_sites: "List[List[ReductionSite]] | None" = None
        self.walk_states: "List[List[int]] | None" = None
        self._record_walks = record_walks
        # Per-node successor state ids (goto targets), built lazily by the
        # splice layer.  Invariant across rhs splices: the lr0 guards
        # pin both the node space and every successor state id.
        self.successors: "array | None" = None
        # Reverse (predecessor) views of the reads/includes CSRs, built
        # lazily by the incremental digraph passes and *patched* across
        # splices (only changed rows move) rather than rebuilt.
        self.reads_reverse: "List[List[int]] | None" = None
        self.includes_reverse: "List[List[int]] | None" = None

        # Lazily built Symbol-level views.
        self._transitions_view: "List[Transition] | None" = None
        self._dr_view: "Dict[Transition, int] | None" = None
        self._reads_view: "Dict[Transition, Tuple[Transition, ...]] | None" = None
        self._includes_view: "Dict[Transition, List[Transition]] | None" = None
        self._lookback_view: "Dict[ReductionSite, List[Transition]] | None" = None

        self._budget = budget
        if budget is not None:
            budget.enter_phase("relations")
        with instrument.span("lalr.relations"):
            self._compute_dr_and_reads()
            self._compute_includes_and_lookback()
        if budget is not None:
            self._budget = None
            budget.publish()
        if instrument.enabled():
            instrument.absorb("relations", self.stats())

    # -- DR and reads --------------------------------------------------

    def _compute_dr_and_reads(self) -> None:
        """One pass over the nodes: DR masks and the `reads` CSR rows.

        The successor state's outgoing IDs split at ``num_terminals``:
        terminal IDs go straight into the DR bitmask (bit = terminal ID),
        nullable nonterminal IDs become `reads` edges.
        """
        states = self.automaton.states
        ids = self.ids
        num_terminals = ids.num_terminals
        num_nonterminals = self.num_nonterminals
        nullable_ids = bytearray(num_nonterminals)
        for symbol in self.nullable:
            nullable_ids[ids.nonterminal_id(symbol)] = 1

        node_index = self.node_index
        dr_masks = self.dr_masks
        budget = self._budget
        offsets, adj = self.reads_offsets, self.reads_adj
        offsets.append(0)
        for packed_id in self.packed:
            if budget is not None:
                budget.tick()
            state_id, nt_id = divmod(packed_id, num_nonterminals)
            successor = states[state_id].targets[num_terminals + nt_id]
            successor_state = states[successor]
            targets = successor_state.targets
            mask = 0
            base = successor * num_nonterminals
            for out_sid in successor_state.out_sids:
                if out_sid < num_terminals:
                    mask |= 1 << out_sid
                elif nullable_ids[out_sid - num_terminals]:
                    adj.append(node_index[base + out_sid - num_terminals])
            dr_masks.append(mask)
            offsets.append(len(adj))

    # -- includes and lookback ---------------------------------------------

    def _compute_includes_and_lookback(self) -> None:
        """One forward walk per (transition, production of its nonterminal).

        From ``(p', B)`` and production ``B -> x1 ... xn`` we walk states
        ``p' = s0 --x1--> s1 --x2--> ... --xn--> sn``.  At position i where
        ``x_{i+1}`` is a nonterminal and ``x_{i+2} ... xn`` are all
        nullable, ``(s_i, x_{i+1}) includes (p', B)``.  At the end,
        ``(s_n, B -> x1...xn) lookback (p', B)``.

        Edges arrive bucketed per *target* node; they are flattened into
        the CSR arrays afterwards.
        """
        states = self.automaton.states
        grammar = self.grammar
        ids = self.ids
        num_terminals = ids.num_terminals
        num_nonterminals = self.num_nonterminals
        nullable_ids = bytearray(num_nonterminals)
        for symbol in self.nullable:
            nullable_ids[ids.nonterminal_id(symbol)] = 1
        node_index = self.node_index

        budget = self._budget
        recording = self._record_walks
        if recording:
            self.walk_edges = walk_edges = []
            self.walk_sites = walk_sites = []
            self.walk_states = walk_states = []
        buckets: List[List[int]] = [[] for _ in range(self.n_nodes)]
        for node, packed_id in enumerate(self.packed):
            source, lhs_nt_id = divmod(packed_id, num_nonterminals)
            if recording:
                node_edges: List[int] = []
                node_sites: List[ReductionSite] = []
                node_states: List[int] = [source]
            for production in grammar.productions_for_ntid(lhs_nt_id):
                if budget is not None:
                    budget.tick()
                rhs_sids = production.rhs_sids
                n = len(rhs_sids)
                # suffix_nullable[i] iff rhs[i:] =>* epsilon.
                suffix_nullable = bytearray(n + 1)
                suffix_nullable[n] = 1
                for i in range(n - 1, -1, -1):
                    sid = rhs_sids[i]
                    suffix_nullable[i] = (
                        sid >= num_terminals
                        and nullable_ids[sid - num_terminals]
                        and suffix_nullable[i + 1]
                    )

                state = source
                for i in range(n):
                    sid = rhs_sids[i]
                    if sid >= num_terminals and suffix_nullable[i + 1]:
                        edge_node = node_index.get(
                            state * num_nonterminals + sid - num_terminals
                        )
                        # goto(state, symbol) is defined whenever the walk
                        # continues, but guard for robustness.
                        if edge_node is not None:
                            buckets[edge_node].append(node)
                            if recording:
                                node_edges.append(edge_node)
                    next_state = states[state].targets[sid]
                    assert next_state >= 0, (
                        "automaton is missing a transition the closure implies"
                    )
                    state = next_state
                    if recording:
                        node_states.append(state)
                site = (state, production.index)
                self.lookback_nodes.setdefault(site, []).append(node)
                if recording:
                    node_sites.append(site)
            if recording:
                walk_edges.append(node_edges)
                walk_sites.append(node_sites)
                walk_states.append(node_states)

        offsets, adj = self.includes_offsets, self.includes_adj
        offsets.append(0)
        for bucket in buckets:
            adj.extend(bucket)
            offsets.append(len(adj))

    # -- node <-> Symbol boundary ---------------------------------------

    def transition_at(self, node: int) -> Transition:
        """The Symbol-level (state, nonterminal) for dense node *node*."""
        state_id, nt_id = divmod(self.packed[node], self.num_nonterminals)
        return (state_id, self.ids.nonterminal(nt_id))

    def node_of(self, transition: Transition) -> int:
        """The dense node index for a Symbol-level transition (KeyError
        if it is not a nonterminal transition of the automaton)."""
        state_id, symbol = transition
        packed_id = state_id * self.num_nonterminals + self.ids.nonterminal_id(symbol)
        return self.node_index[packed_id]

    # -- Symbol-level views (lazy; diagnostics and baselines only) -----

    @property
    def transitions(self) -> List[Transition]:
        """All nonterminal transitions, in deterministic order."""
        view = self._transitions_view
        if view is None:
            view = [self.transition_at(i) for i in range(self.n_nodes)]
            self._transitions_view = view
        return view

    @property
    def dr(self) -> Dict[Transition, int]:
        """``dr[(p, A)]`` — the DR set as a terminal bitmask."""
        view = self._dr_view
        if view is None:
            transitions = self.transitions
            view = {transitions[i]: self.dr_masks[i] for i in range(self.n_nodes)}
            self._dr_view = view
        return view

    def _expand_csr(
        self, offsets: "array", adj: "array"
    ) -> "Dict[Transition, List[Transition]]":
        transitions = self.transitions
        return {
            transitions[i]: [
                transitions[adj[j]] for j in range(offsets[i], offsets[i + 1])
            ]
            for i in range(self.n_nodes)
        }

    @property
    def reads(self) -> Dict[Transition, Tuple[Transition, ...]]:
        """``reads[(p, A)]`` — successor transitions under `reads`."""
        view = self._reads_view
        if view is None:
            view = {
                transition: tuple(edges)
                for transition, edges in self._expand_csr(
                    self.reads_offsets, self.reads_adj
                ).items()
            }
            self._reads_view = view
        return view

    @property
    def includes(self) -> Dict[Transition, List[Transition]]:
        """``includes[(p, A)]`` — successor transitions under `includes`."""
        view = self._includes_view
        if view is None:
            view = self._expand_csr(self.includes_offsets, self.includes_adj)
            self._includes_view = view
        return view

    @property
    def lookback(self) -> Dict[ReductionSite, List[Transition]]:
        """``lookback[(q, prod)]`` — the transitions whose Follow sets
        feed LA(q, prod)."""
        view = self._lookback_view
        if view is None:
            transitions = self.transitions
            view = {
                site: [transitions[node] for node in nodes]
                for site, nodes in self.lookback_nodes.items()
            }
            self._lookback_view = view
        return view

    # -- reporting -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "nonterminal_transitions": self.n_nodes,
            "dr_bits": sum(self.vocabulary.count(m) for m in self.dr_masks),
            "reads_edges": len(self.reads_adj),
            "includes_edges": len(self.includes_adj),
            "lookback_edges": sum(len(e) for e in self.lookback_nodes.values()),
            "reduction_sites": len(self.lookback_nodes),
        }

"""The DeRemer–Pennello LALR(1) look-ahead computation, end to end.

Pipeline (section 3 of DESIGN.md)::

    LR(0) automaton
        -> relations (DR, reads, includes, lookback)
        -> Read  = Digraph(reads,    DR)
        -> Follow = Digraph(includes, Read)
        -> LA(q, A -> ω) = ⋃ Follow(p, A) over lookback

:class:`LalrAnalysis` runs the pipeline once at construction and exposes
the LA sets plus the paper's diagnostics:

- ``not_lr_k`` / ``reads_sccs``: a nontrivial SCC in `reads` proves the
  grammar is **not LR(k) for any k** (the paper's Theorem — two nullable
  nonterminals reading each other make the automaton loop without
  consuming input).
- ``includes_sccs``: nontrivial `includes` components are legal (the
  shared Follow set is still correct for LALR(1)) but they are exactly
  where LALR's merging collapses left context, so they are surfaced for
  grammar debugging.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..automaton.lr0 import LR0Automaton
from ..grammar.grammar import Grammar
from ..grammar.symbols import Symbol
from . import instrument
from .bitset import TerminalVocabulary
from .digraph import (
    DigraphStats,
    build_reverse_adjacency,
    digraph_int,
    digraph_int_incremental,
)
from .relations import LalrRelations, ReductionSite, Transition


class LalrAnalysis:
    """LALR(1) look-ahead sets for one grammar, via DeRemer–Pennello.

    Args:
        grammar: Any grammar; it is augmented if necessary.
        automaton: Optionally, a pre-built LR(0) automaton to reuse.
        budget: Optional :class:`repro.core.budget.Budget` governing the
            whole pipeline (LR(0) build when not pre-built, relations,
            both Digraph passes, LA unions); exhaustion raises
            :class:`repro.core.budget.BudgetExceeded` carrying the phase
            reached and partial-progress counters.

    Attributes:
        automaton: The LR(0) automaton everything is computed on.
        relations: The constructed relations (sizes, for inspection).
        read_sets / follow_sets: Per nonterminal-transition bitmasks.
        la_masks: ``(state, production index) -> bitmask``.
        stats: Digraph operation counters for the cost benchmarks.
    """

    def __init__(
        self,
        grammar: Grammar,
        automaton: "LR0Automaton | None" = None,
        budget=None,
        record_walks: bool = False,
    ):
        if automaton is None:
            automaton = LR0Automaton(grammar, budget=budget)
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.vocabulary = TerminalVocabulary(self.grammar)
        self.relations = LalrRelations(
            automaton, self.vocabulary, budget=budget, record_walks=record_walks
        )
        self.stats = DigraphStats()

        relations = self.relations
        n_nodes = relations.n_nodes

        # Both Digraph passes run on the integer core: dense node
        # indices, CSR adjacency, flat mask lists — no Symbol hashing.

        # Phase 1: Read = Digraph over `reads`, seeded with DR.
        if budget is not None:
            budget.enter_phase("digraph.reads")
        with instrument.span("lalr.digraph.reads"):
            self._read_masks, reads_scc_nodes = digraph_int(
                n_nodes,
                relations.reads_offsets,
                relations.reads_adj,
                relations.dr_masks,
                self.stats,
                budget=budget,
            )

        # Phase 2: Follow = Digraph over `includes`, seeded with Read.
        if budget is not None:
            budget.enter_phase("digraph.includes")
        with instrument.span("lalr.digraph.includes"):
            self._follow_masks, includes_scc_nodes = digraph_int(
                n_nodes,
                relations.includes_offsets,
                relations.includes_adj,
                self._read_masks,
                self.stats,
                budget=budget,
            )

        self._finish(reads_scc_nodes, includes_scc_nodes, budget)

    def _finish(
        self,
        reads_scc_nodes: List[Tuple[int, ...]],
        includes_scc_nodes: List[Tuple[int, ...]],
        budget=None,
    ) -> None:
        """Phase 3 (LA unions) plus the shared epilogue.

        Factored out of ``__init__`` so the incremental assembly path
        (:meth:`spliced_from`) finishes identically: the LA dict is
        rebuilt here in ``lookback_nodes`` insertion order, which both
        construction paths produce identically, so ``la_masks`` comes
        out bit-identical either way.
        """
        relations = self.relations
        # Phase 3: LA = union of Follow over `lookback`.
        if budget is not None:
            budget.enter_phase("la")
        with instrument.span("lalr.la"):
            follow_masks = self._follow_masks
            stats = self.stats
            self.la_masks: Dict[ReductionSite, int] = {}
            for site, lookback_nodes in relations.lookback_nodes.items():
                if budget is not None:
                    budget.tick()
                mask = 0
                for node in lookback_nodes:
                    mask |= follow_masks[node]
                    stats.unions += 1
                self.la_masks[site] = mask
        if budget is not None:
            budget.publish()
        instrument.count("lalr.lookahead_sites", len(self.la_masks))

        # Node-level SCCs are kept for the incremental path (clean ones
        # survive an edit verbatim); the Symbol-level views below are the
        # public diagnostics.
        self._reads_scc_nodes = reads_scc_nodes
        self._includes_scc_nodes = includes_scc_nodes
        # SCC diagnostics are rare and small: widen to Symbol-level
        # transitions eagerly so the public attributes keep their
        # pre-refactor shape.
        self.reads_sccs: List[Tuple[Transition, ...]] = [
            tuple(relations.transition_at(node) for node in component)
            for component in reads_scc_nodes
        ]
        self.includes_sccs: List[Tuple[Transition, ...]] = [
            tuple(relations.transition_at(node) for node in component)
            for component in includes_scc_nodes
        ]
        self._read_sets_view: "Dict[Transition, int] | None" = None
        self._follow_sets_view: "Dict[Transition, int] | None" = None

    @classmethod
    def spliced_from(
        cls,
        old: "LalrAnalysis",
        automaton: LR0Automaton,
        relations: LalrRelations,
        changed_reads: List[int],
        changed_includes: List[int],
    ) -> "LalrAnalysis":
        """Assemble the edited grammar's analysis by patching *old*'s.

        *automaton*/*relations* come from the splice layers
        (:func:`repro.automaton.lr0_delta.splice_lr0`,
        :func:`repro.core.relations_delta.splice_relations`) over the
        same node space as *old*; *changed_reads*/*changed_includes* are
        the relation rows that actually differ.  Both Digraph passes are
        patched via :func:`digraph_int_incremental` (bit-identical masks
        by least-fixed-point uniqueness); surviving all-clean SCCs are
        carried over from *old* — SCC membership is uniformly dirty or
        clean, so the merged list equals a from-scratch run's as a set,
        though possibly in different order.
        """
        self = object.__new__(cls)
        self.automaton = automaton
        self.grammar = automaton.grammar
        self.vocabulary = relations.vocabulary
        self.relations = relations
        self.stats = DigraphStats()
        n_nodes = relations.n_nodes

        # The reverse views are cached on the relations object: the
        # splice layer patches them across edits, so after the first
        # incremental pass the O(edges) rebuild disappears.
        if relations.reads_reverse is None:
            relations.reads_reverse = build_reverse_adjacency(
                n_nodes, relations.reads_offsets, relations.reads_adj
            )
        if relations.includes_reverse is None:
            relations.includes_reverse = build_reverse_adjacency(
                n_nodes, relations.includes_offsets, relations.includes_adj
            )
        with instrument.span("lalr.digraph.reads"):
            read_masks, dirty_reads_sccs, dirty_reads = digraph_int_incremental(
                n_nodes,
                relations.reads_offsets,
                relations.reads_adj,
                relations.dr_masks,
                old._read_masks,
                changed_reads,
                self.stats,
                reverse=relations.reads_reverse,
            )
        self._read_masks = read_masks
        reads_scc_nodes = [
            component
            for component in old._reads_scc_nodes
            if not dirty_reads[component[0]]
        ] + dirty_reads_sccs

        # The includes pass sees a changed input wherever the includes
        # row changed *or* the node's Read mask (its seed) changed.
        old_read_masks = old._read_masks
        includes_seeds = list(changed_includes)
        seeded = set(changed_includes)
        for node in range(n_nodes):
            if (
                dirty_reads[node]
                and read_masks[node] != old_read_masks[node]
                and node not in seeded
            ):
                includes_seeds.append(node)
        with instrument.span("lalr.digraph.includes"):
            follow_masks, dirty_includes_sccs, dirty_includes = (
                digraph_int_incremental(
                    n_nodes,
                    relations.includes_offsets,
                    relations.includes_adj,
                    read_masks,
                    old._follow_masks,
                    includes_seeds,
                    self.stats,
                    reverse=relations.includes_reverse,
                )
            )
        self._follow_masks = follow_masks
        includes_scc_nodes = [
            component
            for component in old._includes_scc_nodes
            if not dirty_includes[component[0]]
        ] + dirty_includes_sccs

        self._finish(reads_scc_nodes, includes_scc_nodes)
        return self

    # -- diagnostics -----------------------------------------------------

    @property
    def not_lr_k(self) -> bool:
        """True when the grammar is provably not LR(k) for any k
        (nontrivial cycle in `reads`)."""
        return bool(self.reads_sccs)

    # -- Symbol-keyed set views (boundary; lazily built) -----------------

    @property
    def read_sets(self) -> Dict[Transition, int]:
        """Per nonterminal-transition Read bitmasks, Symbol-keyed."""
        view = self._read_sets_view
        if view is None:
            transitions = self.relations.transitions
            masks = self._read_masks
            view = {transitions[i]: masks[i] for i in range(len(masks))}
            self._read_sets_view = view
        return view

    @property
    def follow_sets(self) -> Dict[Transition, int]:
        """Per nonterminal-transition Follow bitmasks, Symbol-keyed."""
        view = self._follow_sets_view
        if view is None:
            transitions = self.relations.transitions
            masks = self._follow_masks
            view = {transitions[i]: masks[i] for i in range(len(masks))}
            self._follow_sets_view = view
        return view

    # -- queries -----------------------------------------------------------

    def lookahead(self, state_id: int, production_index: int) -> FrozenSet[Symbol]:
        """LA(q, A -> ω) as a set of terminals.

        For the augmented production 0 the LA set is empty by construction
        (its reduction is the accept action and is never taken by
        lookahead); a query for a (state, production) pair that is not a
        reduction site raises KeyError.
        """
        return self.vocabulary.symbols(self.la_masks[(state_id, production_index)])

    def lookahead_table(self) -> Dict[ReductionSite, FrozenSet[Symbol]]:
        """All LA sets, widened to symbol sets."""
        return {
            site: self.vocabulary.symbols(mask)
            for site, mask in self.la_masks.items()
        }

    def read_set(self, transition: Transition) -> FrozenSet[Symbol]:
        return self.vocabulary.symbols(
            self._read_masks[self.relations.node_of(transition)]
        )

    def follow_set(self, transition: Transition) -> FrozenSet[Symbol]:
        return self.vocabulary.symbols(
            self._follow_masks[self.relations.node_of(transition)]
        )

    def dr_set(self, transition: Transition) -> FrozenSet[Symbol]:
        return self.vocabulary.symbols(
            self.relations.dr_masks[self.relations.node_of(transition)]
        )

    # -- reporting -----------------------------------------------------

    def describe(self) -> str:
        """Multi-line report of all Follow and LA sets (debugging aid)."""
        lines: List[str] = []
        for transition in self.relations.transitions:
            state, symbol = transition
            follow = sorted(t.name for t in self.follow_set(transition))
            lines.append(f"Follow({state}, {symbol.name}) = {{{', '.join(follow)}}}")
        for (state, production_index), mask in sorted(self.la_masks.items()):
            production = self.grammar.productions[production_index]
            la = sorted(t.name for t in self.vocabulary.symbols(mask))
            lines.append(f"LA({state}, {production}) = {{{', '.join(la)}}}")
        if self.not_lr_k:
            lines.append(
                f"grammar is not LR(k): {len(self.reads_sccs)} nontrivial reads-SCC(s)"
            )
        return "\n".join(lines)

    def cost_summary(self) -> Dict[str, int]:
        """Machine-independent cost counters (Table 2 of EXPERIMENTS.md)."""
        summary = dict(self.relations.stats())
        summary.update(self.stats.as_dict())
        summary["lr0_states"] = len(self.automaton)
        return summary


def compute_lookaheads(
    grammar: Grammar, automaton: "LR0Automaton | None" = None, budget=None
) -> Dict[ReductionSite, FrozenSet[Symbol]]:
    """Convenience one-shot: LA sets for every reduction site of *grammar*."""
    return LalrAnalysis(grammar, automaton, budget=budget).lookahead_table()

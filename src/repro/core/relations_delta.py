"""Delta-scoped recomputation of the DeRemer–Pennello relations.

Given the old :class:`~repro.core.relations.LalrRelations`, the spliced
automaton and the per-state dirty flags from
:func:`repro.automaton.lr0_delta.splice_lr0`, :func:`splice_relations`
rebuilds only the relation rows an rhs edit can have touched:

- a **DR/reads row** of node ``(p, A)`` depends only on the successor
  state's transition row — reusable iff both ``p`` and ``goto(p, A)``
  are clean states;
- an **includes/lookback walk** from node ``(p', B)`` depends on ``B``'s
  productions and on the transition rows of every state the walk steps
  through — reusable iff ``B`` is not a dirty nonterminal and every
  recorded walk state is clean.  Reuse replays the recorded walk memo
  (edge emissions, lookback sites) verbatim, so bucket contents and the
  lookback dict's insertion order come out identical to from-scratch.

Nullability is global input to both: if the edit changed the nullable
set every row is suspect, and this layer raises
:class:`~repro.automaton.lr0_delta.IncrementalFallback` rather than
chase the dependency (a documented v1 limitation — the session rebuilds
from scratch, which is always correct).

The node space (``packed``/``node_index``) is shared object-level with
the old relations: the automaton splice already verified no state's
nonterminal transition sequence changed.

Besides the new relations, the splice reports which rows actually
*changed* — the dirty seeds the incremental digraph passes start from.
"""

from __future__ import annotations

from array import array
from typing import List, Tuple

from ..analysis.nullable import nullable_nonterminals
from ..automaton.lr0 import LR0Automaton
from ..automaton.lr0_delta import IncrementalFallback
from ..grammar.symbols import Symbol
from . import instrument
from .relations import LalrRelations, ReductionSite

__all__ = ["splice_relations"]


def splice_relations(
    old: LalrRelations,
    automaton: LR0Automaton,
    dirty: bytearray,
    dirty_nonterminals: "frozenset[Symbol]",
) -> "Tuple[LalrRelations, List[int], List[int]]":
    """Relations for the spliced *automaton*, reusing *old*'s clean rows.

    Returns ``(relations, changed_reads_nodes, changed_includes_nodes)``
    where the two node lists are the rows whose content differs from
    *old* — the seeds for the incremental digraph passes (DR changes
    count as reads-pass seeds).

    Raises:
        IncrementalFallback: nullability changed, or *old* carries no
            walk memo (it was built without ``record_walks``).
    """
    if old.walk_edges is None:
        raise IncrementalFallback("old relations carry no walk memo")
    grammar = automaton.grammar
    new_nullable = nullable_nonterminals(grammar)
    if new_nullable != old.nullable:
        raise IncrementalFallback("nullability changed")

    new = LalrRelations.__new__(LalrRelations)
    new.automaton = automaton
    new.grammar = grammar
    new.ids = grammar.ids
    new.vocabulary = old.vocabulary  # same terminal layout by eligibility
    new.nullable = new_nullable
    new.num_nonterminals = old.num_nonterminals
    # Node space is identical (the automaton splice verified it); share.
    new.packed = old.packed
    new.n_nodes = old.n_nodes
    new.node_index = old.node_index
    new.dr_masks = []
    new.reads_offsets = array("i")
    new.reads_adj = array("i")
    new.includes_offsets = array("i")
    new.includes_adj = array("i")
    new.lookback_nodes = {}
    new.walk_edges = None
    new.walk_sites = None
    new.walk_states = None
    new.successors = None
    new.reads_reverse = None
    new.includes_reverse = None
    new._record_walks = True
    new._transitions_view = None
    new._dr_view = None
    new._reads_view = None
    new._includes_view = None
    new._lookback_view = None
    new._budget = None

    with instrument.span("relations.splice"):
        changed_reads = _splice_dr_and_reads(old, new, dirty)
        changed_includes = _splice_includes_and_lookback(
            old, new, dirty, dirty_nonterminals
        )
        new.reads_reverse = _patch_reverse(
            old.reads_reverse,
            old.reads_offsets,
            old.reads_adj,
            new.reads_offsets,
            new.reads_adj,
            changed_reads,
        )
        new.includes_reverse = _patch_reverse(
            old.includes_reverse,
            old.includes_offsets,
            old.includes_adj,
            new.includes_offsets,
            new.includes_adj,
            changed_includes,
        )
    if instrument.enabled():
        instrument.absorb("relations", new.stats())
    return new, changed_reads, changed_includes


def _patch_reverse(
    old_reverse: "List[List[int]] | None",
    old_offsets: "array",
    old_adj: "array",
    new_offsets: "array",
    new_adj: "array",
    changed: List[int],
) -> "List[List[int]] | None":
    """Carry a cached reverse-adjacency view across a splice.

    Only the *changed* forward rows moved, so only the predecessor lists
    of nodes those rows touch (before or after) differ: the outer list
    is shared shallowly, affected lists are rebuilt copy-on-write —
    every changed source's old entries dropped, its new emissions
    appended (multiplicity preserved; entry order is irrelevant to the
    reverse-reachability sweep that consumes this).  Returns None when
    *old* never built the view (nothing to carry — the next incremental
    digraph pass builds it fresh against the new CSR).
    """
    if old_reverse is None:
        return None
    reverse = list(old_reverse)
    changed_set = set(changed)
    affected = set()
    for src in changed:
        affected.update(old_adj[old_offsets[src] : old_offsets[src + 1]])
        affected.update(new_adj[new_offsets[src] : new_offsets[src + 1]])
    for target in affected:
        reverse[target] = [
            source for source in reverse[target] if source not in changed_set
        ]
    for src in changed:
        for target in new_adj[new_offsets[src] : new_offsets[src + 1]]:
            reverse[target].append(src)
    return reverse


def _node_successors(relations: LalrRelations) -> "array":
    """Per-node goto-target state ids, cached on *relations*.

    Invariant across rhs splices: the lr0 guards pin the node space and
    every successor state id, so a spliced relations object shares its
    predecessor's array outright.
    """
    successors = relations.successors
    if successors is None:
        states = relations.automaton.states
        num_terminals = relations.ids.num_terminals
        num_nonterminals = relations.num_nonterminals
        successors = array("i", bytes(4 * relations.n_nodes))
        for n, packed_id in enumerate(relations.packed):
            state_id, nt_id = divmod(packed_id, num_nonterminals)
            successors[n] = states[state_id].targets[num_terminals + nt_id]
        relations.successors = successors
    return successors


def _splice_dr_and_reads(
    old: LalrRelations, new: LalrRelations, dirty: bytearray
) -> List[int]:
    """Reuse every DR/reads row both of whose endpoint states are clean.

    Rows are copied in maximal clean *runs* (one C-level slice extend per
    run for masks, adjacency and shifted offsets) — the per-node Python
    work happens only at run boundaries, i.e. for the few rows an edit
    actually dirtied.
    """
    states = new.automaton.states
    ids = new.ids
    num_terminals = ids.num_terminals
    num_nonterminals = new.num_nonterminals
    n_nodes = new.n_nodes
    node_index = new.node_index
    successors = _node_successors(old)
    new.successors = successors

    # A row needs recomputing iff its source or successor state is dirty.
    # Source-dirty nodes come from the dirty states' own nonterminal
    # transitions; successor-dirty nodes from one scan of the (invariant)
    # successor array.
    recompute = bytearray(n_nodes)
    for state_id, flag in enumerate(dirty):
        if not flag:
            continue
        base = state_id * num_nonterminals
        for out_sid in states[state_id].out_sids:
            if out_sid >= num_terminals:
                recompute[node_index[base + out_sid - num_terminals]] = 1
    for n, successor in enumerate(successors):
        if dirty[successor]:
            recompute[n] = 1

    nullable_ids = bytearray(num_nonterminals)
    for symbol in new.nullable:
        nullable_ids[ids.nonterminal_id(symbol)] = 1
    dr_masks = new.dr_masks
    offsets, adj = new.reads_offsets, new.reads_adj
    old_offsets, old_adj, old_dr = old.reads_offsets, old.reads_adj, old.dr_masks
    offsets.append(0)
    changed: List[int] = []
    recomputed = 0
    i = 0
    while i < n_nodes:
        j = recompute.find(1, i)
        if j < 0:
            j = n_nodes
        if j > i:
            dr_masks.extend(old_dr[i:j])
            base = old_offsets[i]
            shift = len(adj) - base
            adj.extend(old_adj[base : old_offsets[j]])
            if shift:
                offsets.extend(o + shift for o in old_offsets[i + 1 : j + 1])
            else:
                offsets.extend(old_offsets[i + 1 : j + 1])
        if j == n_nodes:
            break
        # Recompute row j — the same per-node work as the from-scratch
        # _compute_dr_and_reads loop, against the spliced automaton.
        recomputed += 1
        successor_state = states[successors[j]]
        mask = 0
        base = successors[j] * num_nonterminals
        row_start = len(adj)
        for out_sid in successor_state.out_sids:
            if out_sid < num_terminals:
                mask |= 1 << out_sid
            elif nullable_ids[out_sid - num_terminals]:
                adj.append(node_index[base + out_sid - num_terminals])
        dr_masks.append(mask)
        offsets.append(len(adj))
        if mask != old_dr[j] or adj[row_start:] != old_adj[
            old_offsets[j] : old_offsets[j + 1]
        ]:
            changed.append(j)
        i = j + 1
    if instrument.enabled():
        instrument.count("phase.relations.rows_reused", n_nodes - recomputed)
        instrument.count("phase.relations.rows_recomputed", recomputed)
    return changed


def _splice_includes_and_lookback(
    old: LalrRelations,
    new: LalrRelations,
    dirty: bytearray,
    dirty_nonterminals: "frozenset[Symbol]",
) -> List[int]:
    """Rewalk only the dirty walks; *patch* everything they fed.

    A clean walk replays verbatim, so instead of replaying it — O(total
    walk size) per update — the old per-node memo lists are copied
    wholesale and only the rewalked nodes' entries are replaced.  The
    includes CSR is then assembled by slicing unaffected bucket rows
    straight out of the old arrays (in maximal runs) and merge-rebuilding
    just the buckets a rewalked source feeds.  The merge is sound because
    a bucket row lists its *source* node ids in non-decreasing order
    (sources are walked in ascending node order): drop the rewalked
    sources' old entries, then merge the rewalked sources' new emissions
    back in by node id.

    The lookback dict is shared object-for-object with *old* when no
    rewalked node's site list changed (the common case — relations are
    immutable once built); otherwise it is rebuilt from the patched site
    memos in from-scratch order.
    """
    states = new.automaton.states
    grammar = new.grammar
    ids = new.ids
    num_terminals = ids.num_terminals
    num_nonterminals = new.num_nonterminals
    n_nodes = new.n_nodes
    nullable_ids = bytearray(num_nonterminals)
    for symbol in new.nullable:
        nullable_ids[ids.nonterminal_id(symbol)] = 1
    dirty_nt_ids = bytearray(num_nonterminals)
    for symbol in dirty_nonterminals:
        dirty_nt_ids[ids.nonterminal_id(symbol)] = 1
    node_index = new.node_index
    # The per-walk cleanliness test runs over every recorded walk state;
    # a set.isdisjoint against the (small) dirty-state set keeps that
    # scan in C instead of a per-state generator round-trip.
    dirty_states_set = {state_id for state_id, flag in enumerate(dirty) if flag}

    old_edges, old_sites, old_states = old.walk_edges, old.walk_sites, old.walk_states
    new.walk_edges = walk_edges = list(old_edges)
    new.walk_sites = walk_sites = list(old_sites)
    new.walk_states = walk_states = list(old_states)

    rewalked: List[int] = []
    sites_changed = False
    for node, packed_id in enumerate(new.packed):
        source, lhs_nt_id = divmod(packed_id, num_nonterminals)
        if not dirty_nt_ids[lhs_nt_id] and dirty_states_set.isdisjoint(
            old_states[node]
        ):
            continue
        rewalked.append(node)
        node_edges: List[int] = []
        node_sites: List[ReductionSite] = []
        node_states: List[int] = [source]
        for production in grammar.productions_for_ntid(lhs_nt_id):
            rhs_sids = production.rhs_sids
            n = len(rhs_sids)
            suffix_nullable = bytearray(n + 1)
            suffix_nullable[n] = 1
            for i in range(n - 1, -1, -1):
                sid = rhs_sids[i]
                suffix_nullable[i] = (
                    sid >= num_terminals
                    and nullable_ids[sid - num_terminals]
                    and suffix_nullable[i + 1]
                )
            state = source
            for i in range(n):
                sid = rhs_sids[i]
                if sid >= num_terminals and suffix_nullable[i + 1]:
                    edge_node = node_index.get(
                        state * num_nonterminals + sid - num_terminals
                    )
                    if edge_node is not None:
                        node_edges.append(edge_node)
                next_state = states[state].targets[sid]
                assert next_state >= 0, (
                    "spliced automaton is missing a transition the closure implies"
                )
                state = next_state
                node_states.append(state)
            node_sites.append((state, production.index))
        walk_edges[node] = node_edges
        walk_sites[node] = node_sites
        walk_states[node] = node_states
        if node_sites != old_sites[node]:
            sites_changed = True
    if instrument.enabled():
        instrument.count("phase.relations.walks_reused", n_nodes - len(rewalked))
        instrument.count("phase.relations.walks_rewalked", len(rewalked))

    if sites_changed:
        lookback = new.lookback_nodes
        for node, node_sites in enumerate(walk_sites):
            for site in node_sites:
                lookback.setdefault(site, []).append(node)
    else:
        new.lookback_nodes = old.lookback_nodes

    # Buckets a rewalked source fed (before or after) are the only
    # includes rows that can differ.
    rewalked_set = set(rewalked)
    affected = bytearray(n_nodes)
    contributions: "dict[int, List[int]]" = {}
    for src in rewalked:
        for target in old_edges[src]:
            affected[target] = 1
    for src in rewalked:  # ascending, so contributions stay sorted by src
        for target in walk_edges[src]:
            affected[target] = 1
            contributions.setdefault(target, []).append(src)

    offsets, adj = new.includes_offsets, new.includes_adj
    old_offsets, old_adj = old.includes_offsets, old.includes_adj
    offsets.append(0)
    changed: List[int] = []
    i = 0
    while i < n_nodes:
        j = affected.find(1, i)
        if j < 0:
            j = n_nodes
        if j > i:
            base = old_offsets[i]
            shift = len(adj) - base
            adj.extend(old_adj[base : old_offsets[j]])
            if shift:
                offsets.extend(o + shift for o in old_offsets[i + 1 : j + 1])
            else:
                offsets.extend(old_offsets[i + 1 : j + 1])
        if j == n_nodes:
            break
        old_row = old_adj[old_offsets[j] : old_offsets[j + 1]].tolist()
        fresh = contributions.get(j, ())
        merged: List[int] = []
        ci, clen = 0, len(fresh)
        for entry in old_row:
            if entry in rewalked_set:
                continue
            while ci < clen and fresh[ci] < entry:
                merged.append(fresh[ci])
                ci += 1
            merged.append(entry)
        while ci < clen:
            merged.append(fresh[ci])
            ci += 1
        adj.extend(merged)
        offsets.append(len(adj))
        if merged != old_row:
            changed.append(j)
        i = j + 1
    return changed

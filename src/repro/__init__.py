"""repro — Efficient computation of LALR(1) look-ahead sets.

A full reproduction of DeRemer & Pennello (PLDI 1979 / TOPLAS 1982): the
Digraph-based LALR(1) look-ahead algorithm, the baselines it was measured
against (SLR, canonical-LR(1) merging, yacc-style propagation), and the
surrounding parser-generator substrate (grammars, LR automata, parse
tables, a shift-reduce engine).

Quickstart:
    >>> from repro import load_grammar, LalrAnalysis
    >>> g = load_grammar("E -> E + T | T\\nT -> id").augmented()
    >>> analysis = LalrAnalysis(g)
    >>> sorted(t.name for t in analysis.lookahead_table().popitem()[1])  # doctest: +SKIP
"""

from .analysis import FirstSets, FollowSets, SentenceGenerator
from .baselines import MergedLr1Analysis, PropagationAnalysis, SlrAnalysis
from .core import Budget, BudgetExceeded, LalrAnalysis, compute_lookaheads, digraph
from .grammar import (
    Grammar,
    GrammarBuilder,
    GrammarError,
    grammar_from_rules,
    load_grammar,
    load_grammar_file,
)
from .automaton import LR0Automaton, LR1Automaton
from .parser import Lexer, Node, ParseError, Parser, Token
from .tables import (
    GrammarClass,
    ParseTable,
    build_clr_table,
    build_lalr_table,
    build_lr0_table,
    build_slr_table,
    classify,
)

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "BudgetExceeded",
    "FirstSets",
    "FollowSets",
    "Grammar",
    "GrammarBuilder",
    "GrammarClass",
    "GrammarError",
    "LR0Automaton",
    "LR1Automaton",
    "LalrAnalysis",
    "Lexer",
    "MergedLr1Analysis",
    "Node",
    "ParseError",
    "ParseTable",
    "Parser",
    "PropagationAnalysis",
    "SentenceGenerator",
    "SlrAnalysis",
    "Token",
    "build_clr_table",
    "build_lalr_table",
    "build_lr0_table",
    "build_slr_table",
    "classify",
    "compute_lookaheads",
    "digraph",
    "grammar_from_rules",
    "load_grammar",
    "load_grammar_file",
]

"""Exceptions raised by the grammar subpackage."""

from __future__ import annotations


class GrammarError(Exception):
    """Base class for all grammar-related errors."""


class SymbolError(GrammarError):
    """A symbol was used inconsistently (e.g. terminal on a left-hand side)."""


class ProductionError(GrammarError):
    """A production is malformed or refers to unknown symbols."""


class GrammarSyntaxError(GrammarError):
    """The textual grammar description could not be parsed.

    Attributes:
        line: 1-based line number of the offending token, if known.
        column: 1-based column number of the offending token, if known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column


class GrammarValidationError(GrammarError):
    """The grammar is structurally invalid (no start symbol, empty, ...)."""

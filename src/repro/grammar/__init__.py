"""Context-free grammar substrate: symbols, productions, I/O, transforms."""

from .cnf import CnfGrammar, is_cnf, to_cnf
from .delta import (
    DeltaKind,
    GrammarDelta,
    add_production,
    classify,
    remove_production,
    replace_rhs,
)
from .fingerprint import (
    grammar_fingerprint,
    production_fingerprint,
    production_fingerprints,
    text_fingerprint,
)
from .lint import LintWarning, lint, lint_report
from .builder import GrammarBuilder, grammar_from_rules
from .errors import (
    GrammarError,
    GrammarSyntaxError,
    GrammarValidationError,
    ProductionError,
    SymbolError,
)
from .grammar import Assoc, Grammar, Precedence
from .production import Production
from .reader import load_grammar, load_grammar_file
from .refactor import left_factor, remove_left_recursion
from .symbols import EOF_NAME, EPSILON_NAME, Symbol, SymbolTable
from .transforms import reduce_grammar, remove_epsilon_rules
from .writer import write_arrow, write_yacc

__all__ = [
    "Assoc",
    "DeltaKind",
    "EOF_NAME",
    "EPSILON_NAME",
    "Grammar",
    "GrammarBuilder",
    "GrammarDelta",
    "CnfGrammar",
    "LintWarning",
    "lint",
    "lint_report",
    "is_cnf",
    "to_cnf",
    "GrammarError",
    "GrammarSyntaxError",
    "GrammarValidationError",
    "Precedence",
    "Production",
    "ProductionError",
    "Symbol",
    "SymbolError",
    "SymbolTable",
    "add_production",
    "classify",
    "grammar_fingerprint",
    "grammar_from_rules",
    "load_grammar",
    "load_grammar_file",
    "left_factor",
    "production_fingerprint",
    "production_fingerprints",
    "remove_left_recursion",
    "remove_production",
    "reduce_grammar",
    "remove_epsilon_rules",
    "replace_rhs",
    "text_fingerprint",
    "write_arrow",
    "write_yacc",
]

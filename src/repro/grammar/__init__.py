"""Context-free grammar substrate: symbols, productions, I/O, transforms."""

from .cnf import CnfGrammar, is_cnf, to_cnf
from .lint import LintWarning, lint, lint_report
from .builder import GrammarBuilder, grammar_from_rules
from .errors import (
    GrammarError,
    GrammarSyntaxError,
    GrammarValidationError,
    ProductionError,
    SymbolError,
)
from .grammar import Assoc, Grammar, Precedence
from .production import Production
from .reader import load_grammar, load_grammar_file
from .refactor import left_factor, remove_left_recursion
from .symbols import EOF_NAME, EPSILON_NAME, Symbol, SymbolTable
from .transforms import reduce_grammar, remove_epsilon_rules
from .writer import write_arrow, write_yacc

__all__ = [
    "Assoc",
    "EOF_NAME",
    "EPSILON_NAME",
    "Grammar",
    "GrammarBuilder",
    "CnfGrammar",
    "LintWarning",
    "lint",
    "lint_report",
    "is_cnf",
    "to_cnf",
    "GrammarError",
    "GrammarSyntaxError",
    "GrammarValidationError",
    "Precedence",
    "Production",
    "ProductionError",
    "Symbol",
    "SymbolError",
    "SymbolTable",
    "grammar_from_rules",
    "load_grammar",
    "load_grammar_file",
    "left_factor",
    "remove_left_recursion",
    "reduce_grammar",
    "remove_epsilon_rules",
    "write_arrow",
    "write_yacc",
]

"""Structural diffs between two grammars — what an edit actually changed.

The incremental pipeline (:mod:`repro.pipeline`) recomputes only what an
edit invalidated, so it first needs to know what *kind* of edit happened.
:func:`classify` compares two grammars and answers with a
:class:`GrammarDelta` whose ``kind`` is one of:

- ``identical`` — nothing changed (whole-pipeline reuse);
- ``rhs`` — only production right-hand sides (or their effective
  ``%prec`` symbols) changed, over an unchanged symbol layout: the only
  kind eligible for delta-scoped recomputation;
- ``add-remove`` — productions appeared, disappeared, or changed their
  left-hand side (the production index space shifted);
- ``terminal-set`` — the terminal alphabet changed (every bitmask in the
  pipeline is laid out over terminal IDs);
- ``start`` — the start symbol changed (state 0's kernel changes);
- ``precedence`` — the grammar-level precedence declarations changed
  (every conflict resolution is suspect);
- ``structural`` — anything else, notably a different symbol-ID layout
  (new symbols interned, different :class:`SymbolTable`): the grammars
  are not comparable production-by-production.

Only ``rhs`` deltas are incremental; everything else falls back to a
full rebuild (counted as ``phase.fallback`` by the session).

The edit constructors (:func:`replace_rhs`, :func:`add_production`,
:func:`remove_production`) build the *edited* grammar the session
expects: same :class:`SymbolTable`, fresh :class:`Production` objects,
augmentation preserved (production 0 is never touched — indices here are
the augmented grammar's).  Unknown right-hand-side names are interned as
terminals, the arrow reader's convention for names never defined.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from .grammar import Grammar
from .production import Production
from .symbols import Symbol

__all__ = [
    "DeltaKind",
    "GrammarDelta",
    "classify",
    "replace_rhs",
    "add_production",
    "remove_production",
]


class DeltaKind:
    """The edit taxonomy (string constants, not an enum, for cheap
    comparisons and readable counters/reports)."""

    IDENTICAL = "identical"
    RHS = "rhs"
    ADD_REMOVE = "add-remove"
    TERMINALS = "terminal-set"
    START = "start"
    PRECEDENCE = "precedence"
    STRUCTURAL = "structural"


class GrammarDelta:
    """The classified difference between an old and a new grammar.

    Attributes:
        kind: One of the :class:`DeltaKind` constants.
        changed: Indices of productions whose rhs or ``%prec`` changed
            (meaningful for ``rhs`` deltas; empty otherwise).
        dirty_nonterminals: The left-hand sides of the changed
            productions — the nonterminals whose closures are suspect.
        detail: One human-readable line for reports and logs.
    """

    __slots__ = ("kind", "changed", "dirty_nonterminals", "detail")

    def __init__(
        self,
        kind: str,
        changed: Tuple[int, ...] = (),
        dirty_nonterminals: FrozenSet[Symbol] = frozenset(),
        detail: str = "",
    ):
        self.kind = kind
        self.changed = changed
        self.dirty_nonterminals = dirty_nonterminals
        self.detail = detail or kind

    @property
    def is_identical(self) -> bool:
        return self.kind == DeltaKind.IDENTICAL

    @property
    def is_incremental(self) -> bool:
        """True when delta-scoped recomputation may apply (``rhs`` only)."""
        return self.kind == DeltaKind.RHS

    def __repr__(self) -> str:
        return f"GrammarDelta({self.kind!r}, changed={self.changed!r})"


def classify(old: Grammar, new: Grammar) -> GrammarDelta:
    """Classify the edit turning *old* into *new*.

    Comparison is object-level where the incremental machinery needs it
    to be: an ``rhs`` verdict guarantees the two grammars share their
    Symbol objects and dense-ID layout, so every bitmask, packed item
    and transition row of *old*'s artifacts decodes identically under
    *new*.
    """
    if old is new:
        return GrammarDelta(DeltaKind.IDENTICAL, detail="same grammar object")

    old_ids, new_ids = old.ids, new.ids
    if old_ids.num_terminals != new_ids.num_terminals or {
        s.name for s in old_ids.terminals
    } != {s.name for s in new_ids.terminals}:
        return GrammarDelta(
            DeltaKind.TERMINALS,
            detail=(
                f"terminal set changed "
                f"({old_ids.num_terminals} -> {new_ids.num_terminals} terminals)"
            ),
        )
    if old_ids.num_symbols != new_ids.num_symbols or any(
        a is not b for a, b in zip(old_ids.by_sid, new_ids.by_sid)
    ):
        return GrammarDelta(
            DeltaKind.STRUCTURAL, detail="symbol-ID layouts differ"
        )

    if old.start is not new.start:
        return GrammarDelta(
            DeltaKind.START,
            detail=f"start symbol {old.start.name!r} -> {new.start.name!r}",
        )
    if old.precedence != new.precedence:
        return GrammarDelta(
            DeltaKind.PRECEDENCE, detail="precedence declarations changed"
        )

    old_productions, new_productions = old.productions, new.productions
    if len(old_productions) != len(new_productions) or any(
        p.lhs is not q.lhs for p, q in zip(old_productions, new_productions)
    ):
        return GrammarDelta(
            DeltaKind.ADD_REMOVE,
            detail=(
                f"production list changed "
                f"({len(old_productions)} -> {len(new_productions)} rules)"
            ),
        )

    changed = tuple(
        index
        for index, (p, q) in enumerate(zip(old_productions, new_productions))
        if p.rhs != q.rhs or p.prec_symbol is not q.prec_symbol
    )
    if not changed:
        return GrammarDelta(DeltaKind.IDENTICAL, detail="no production changed")
    dirty = frozenset(new_productions[index].lhs for index in changed)
    names = ", ".join(sorted(s.name for s in dirty))
    return GrammarDelta(
        DeltaKind.RHS,
        changed=changed,
        dirty_nonterminals=dirty,
        detail=f"{len(changed)} rhs edit(s) on {{{names}}}",
    )


# -- edit constructors -------------------------------------------------

SymbolSpec = Union[Symbol, str]


def _resolve(grammar: Grammar, spec: SymbolSpec) -> Symbol:
    if isinstance(spec, Symbol):
        return spec
    existing = grammar.symbols.get(spec)
    if existing is not None:
        return existing
    # Reader convention: a name that never appears as a left-hand side
    # is a terminal.  (Interning extends the shared SymbolTable; the new
    # grammar's layout then differs and classify() reports the edit as
    # a terminal-set delta — a full-rebuild kind, as it must be.)
    return grammar.symbols.terminal(spec)


def _rebuild(
    grammar: Grammar, productions: Sequence[Tuple[Symbol, Tuple[Symbol, ...], Optional[Symbol]]]
) -> Grammar:
    """A fresh Grammar over the same symbols/start/precedence/name."""
    fresh = [
        Production(index, lhs, rhs, prec_symbol)
        for index, (lhs, rhs, prec_symbol) in enumerate(productions)
    ]
    return Grammar(
        grammar.symbols, fresh, grammar.start, grammar.precedence, grammar.name
    )


def _parts(grammar: Grammar) -> "List[Tuple[Symbol, Tuple[Symbol, ...], Optional[Symbol]]]":
    # Carrying prec_symbol explicitly preserves both %prec declarations
    # and the rightmost-terminal defaults of untouched rules verbatim.
    return [(p.lhs, p.rhs, p.prec_symbol) for p in grammar.productions]


def replace_rhs(
    grammar: Grammar,
    index: int,
    rhs: Sequence[SymbolSpec],
    prec_symbol: "Optional[SymbolSpec]" = None,
) -> Grammar:
    """A copy of *grammar* with production *index*'s rhs replaced.

    *prec_symbol* ``None`` re-derives the rightmost-terminal default for
    the new rhs (pass a symbol to pin an explicit ``%prec``).  Production
    0 of an augmented grammar is refused — editing it would break the
    augmentation invariant the whole pipeline relies on.
    """
    if grammar.is_augmented and index == 0:
        raise ValueError("refusing to edit the augmented start production")
    parts = _parts(grammar)
    lhs, _, _ = parts[index]
    new_rhs = tuple(_resolve(grammar, spec) for spec in rhs)
    pinned = _resolve(grammar, prec_symbol) if prec_symbol is not None else None
    parts[index] = (lhs, new_rhs, pinned or Production._rightmost_terminal(new_rhs))
    return _rebuild(grammar, parts)


def add_production(
    grammar: Grammar,
    lhs: SymbolSpec,
    rhs: Sequence[SymbolSpec],
    prec_symbol: "Optional[SymbolSpec]" = None,
) -> Grammar:
    """A copy of *grammar* with ``lhs -> rhs`` appended (an ``add-remove``
    delta: the session rebuilds from scratch for these)."""
    lhs_symbol = _resolve(grammar, lhs)
    if lhs_symbol.is_terminal:
        raise ValueError(f"left-hand side {lhs_symbol.name!r} is a terminal")
    parts = _parts(grammar)
    new_rhs = tuple(_resolve(grammar, spec) for spec in rhs)
    pinned = _resolve(grammar, prec_symbol) if prec_symbol is not None else None
    parts.append((lhs_symbol, new_rhs, pinned or Production._rightmost_terminal(new_rhs)))
    return _rebuild(grammar, parts)


def remove_production(grammar: Grammar, index: int) -> Grammar:
    """A copy of *grammar* without production *index* (``add-remove``)."""
    if grammar.is_augmented and index == 0:
        raise ValueError("refusing to remove the augmented start production")
    parts = _parts(grammar)
    del parts[index]
    return _rebuild(grammar, parts)

"""Fluent programmatic construction of grammars.

Example:
    >>> from repro.grammar.builder import GrammarBuilder
    >>> b = GrammarBuilder("expr")
    >>> b.rule("E", ["E", "+", "T"])
    >>> b.rule("E", ["T"])
    >>> b.rule("T", ["id"])
    >>> g = b.build(start="E")

Symbols are classified automatically: any name that ever appears on a
left-hand side is a nonterminal; every other name is a terminal.  This
matches the convention of most parser-generator input languages and avoids
a separate declaration step for quick experiments.  Use
:meth:`GrammarBuilder.declare_terminal` to force a name to be a terminal
(the builder will then reject rules that use it as a lhs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import GrammarValidationError, SymbolError
from .grammar import Assoc, Grammar, Precedence
from .production import Production
from .symbols import SymbolTable


class GrammarBuilder:
    """Accumulates rules as plain strings, then materialises a Grammar."""

    def __init__(self, name: str = ""):
        self.name = name
        self._rules: List[Tuple[str, Tuple[str, ...], Optional[str]]] = []
        self._declared_terminals: "set[str]" = set()
        self._precedence: Dict[str, Precedence] = {}
        self._next_prec_level = 1
        self._start: Optional[str] = None

    # -- declarations --------------------------------------------------

    def declare_terminal(self, *names: str) -> "GrammarBuilder":
        """Force *names* to be terminals even if never used on a rhs."""
        self._declared_terminals.update(names)
        return self

    def left(self, *names: str) -> "GrammarBuilder":
        """Declare a left-associative precedence level (like yacc %left)."""
        return self._prec_level(names, Assoc.LEFT)

    def right(self, *names: str) -> "GrammarBuilder":
        """Declare a right-associative precedence level (like yacc %right)."""
        return self._prec_level(names, Assoc.RIGHT)

    def nonassoc(self, *names: str) -> "GrammarBuilder":
        """Declare a non-associative precedence level (like yacc %nonassoc)."""
        return self._prec_level(names, Assoc.NONASSOC)

    def _prec_level(self, names: Sequence[str], assoc: Assoc) -> "GrammarBuilder":
        level = self._next_prec_level
        self._next_prec_level += 1
        for name in names:
            self._declared_terminals.add(name)
            self._precedence[name] = Precedence(level, assoc)
        return self

    def start(self, name: str) -> "GrammarBuilder":
        """Set the start symbol (may also be passed to :meth:`build`)."""
        self._start = name
        return self

    # -- rules -----------------------------------------------------------

    def rule(
        self,
        lhs: str,
        rhs: Iterable[str],
        prec: Optional[str] = None,
    ) -> "GrammarBuilder":
        """Add one production.  *rhs* may be empty for an epsilon rule.

        *prec* names a terminal whose precedence the production should take,
        overriding the default rightmost-terminal rule (yacc's %prec).
        """
        if lhs in self._declared_terminals:
            raise SymbolError(f"{lhs!r} was declared terminal; cannot use as lhs")
        self._rules.append((lhs, tuple(rhs), prec))
        return self

    def rules(self, lhs: str, *alternatives: Iterable[str]) -> "GrammarBuilder":
        """Add several alternatives for the same lhs at once."""
        for alternative in alternatives:
            self.rule(lhs, alternative)
        return self

    # -- materialisation ---------------------------------------------------

    def build(self, start: Optional[str] = None, augment: bool = False) -> Grammar:
        """Create the Grammar.

        Args:
            start: Start symbol name; defaults to the declared start or the
                lhs of the first rule.
            augment: If true, return the augmented grammar directly.
        """
        if not self._rules:
            raise GrammarValidationError("no rules were added")
        start_name = start or self._start or self._rules[0][0]

        lhs_names = {lhs for lhs, _, _ in self._rules}
        bad = lhs_names & self._declared_terminals
        if bad:
            raise SymbolError(f"declared terminals used as lhs: {sorted(bad)}")

        table = SymbolTable()
        # Intern nonterminals first, in first-appearance order of lhs.
        for lhs, _, _ in self._rules:
            table.nonterminal(lhs)
        for name in sorted(self._declared_terminals):
            table.terminal(name)
        # Remaining rhs names become terminals.
        for _, rhs, _ in self._rules:
            for name in rhs:
                if name not in table:
                    table.terminal(name)
        for _, _, prec in self._rules:
            if prec is not None and prec not in table:
                table.terminal(prec)

        if start_name not in table:
            raise GrammarValidationError(f"start symbol {start_name!r} does not appear in any rule")

        productions = []
        for index, (lhs, rhs, prec) in enumerate(self._rules):
            prec_symbol = None
            if prec is not None:
                prec_symbol = table[prec]
                if prec_symbol.is_nonterminal:
                    raise SymbolError(f"%prec symbol {prec!r} must be a terminal")
            productions.append(
                Production(index, table[lhs], [table[n] for n in rhs], prec_symbol)
            )

        precedence = {table[name]: prec for name, prec in self._precedence.items()}
        grammar = Grammar(table, productions, table[start_name], precedence, self.name)
        return grammar.augmented() if augment else grammar


def grammar_from_rules(
    rules: Sequence[Tuple[str, Sequence[str]]],
    start: Optional[str] = None,
    name: str = "",
    augment: bool = False,
) -> Grammar:
    """Shorthand: build a grammar from ``[(lhs, [rhs...]), ...]`` pairs."""
    builder = GrammarBuilder(name)
    for lhs, rhs in rules:
        builder.rule(lhs, rhs)
    return builder.build(start=start, augment=augment)

"""Chomsky-normal-form conversion.

CNF is the substrate for the CYK recogniser
(:mod:`repro.parser.cyk`), which the test suite uses as an
*LR-independent membership oracle*: CYK accepts exactly L(G) for any CFG,
ambiguous or not, so LR-parser acceptance can be cross-validated against
it on bounded inputs.

Pipeline (standard, Hopcroft & Ullman):
    1. remove ε-rules (remembering whether ε ∈ L(G)),
    2. remove unit productions A -> B,
    3. lift terminals out of long right-hand sides (``T_a -> a``),
    4. binarise right-hand sides longer than 2.

The result's language equals ``L(G) - {ε}``; ``CnfGrammar.accepts_epsilon``
carries the ε bit separately.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set, Tuple

from .grammar import Grammar
from .production import Production
from .symbols import Symbol, SymbolTable
from .transforms import nullable_from_productions, reduce_grammar, remove_epsilon_rules


class CnfGrammar(NamedTuple):
    """A grammar in Chomsky normal form plus the ε-membership bit.

    ``grammar`` is None when ``L(G) ⊆ {ε}`` — CNF cannot express a
    grammar with no non-empty sentences, so the (at most one) sentence
    lives entirely in ``accepts_epsilon``.
    """

    grammar: "Grammar | None"
    accepts_epsilon: bool


def is_cnf(grammar: Grammar) -> bool:
    """True iff every production is ``A -> B C`` or ``A -> a``."""
    for production in grammar.productions:
        rhs = production.rhs
        if len(rhs) == 1 and rhs[0].is_terminal:
            continue
        if len(rhs) == 2 and rhs[0].is_nonterminal and rhs[1].is_nonterminal:
            continue
        return False
    return True


def to_cnf(grammar: Grammar) -> CnfGrammar:
    """Convert *grammar* to Chomsky normal form.

    The input must be reduced enough to generate something; useless
    symbols are stripped first so the conversion never carries dead
    weight.
    """
    if grammar.is_augmented:
        raise ValueError("convert the user grammar, not its augmented form")
    grammar = reduce_grammar(grammar)
    nullable = nullable_from_productions(grammar.productions)
    accepts_epsilon = grammar.start in nullable

    grammar = remove_epsilon_rules(grammar)
    # remove_epsilon_rules may add S' -> S | %empty when ε ∈ L; drop the
    # ε alternative (the bit is carried separately) and re-reduce, since
    # erasing a nullable-only nonterminal's rules can strand others.
    productions = [p for p in grammar.productions if p.rhs]
    if not productions:
        return CnfGrammar(None, accepts_epsilon)
    grammar = Grammar(grammar.symbols, _renumber(productions), grammar.start,
                      grammar.precedence, grammar.name)
    from .errors import GrammarValidationError

    try:
        grammar = reduce_grammar(grammar)
    except GrammarValidationError:
        return CnfGrammar(None, accepts_epsilon)  # L(G) was exactly {ε} or ∅
    grammar = _remove_unit_productions(grammar)

    table = SymbolTable()
    start = table.nonterminal(grammar.start.name)
    for nonterminal in grammar.nonterminals:
        if any(p.lhs is nonterminal for p in grammar.productions):
            table.nonterminal(nonterminal.name)
    for terminal in grammar.terminals:
        table.terminal(terminal.name)

    fresh_counter = [0]

    def fresh(base: str) -> Symbol:
        while True:
            name = f"{base}#{fresh_counter[0]}"
            fresh_counter[0] += 1
            if name not in table:
                return table.nonterminal(name)

    terminal_proxy: Dict[Symbol, Symbol] = {}
    new_rules: List[Tuple[Symbol, Tuple[Symbol, ...]]] = []
    seen: Set[Tuple[Symbol, Tuple[Symbol, ...]]] = set()

    def emit(lhs: Symbol, rhs: Tuple[Symbol, ...]) -> None:
        key = (lhs, rhs)
        if key not in seen:
            seen.add(key)
            new_rules.append(key)

    def proxy_for(terminal: Symbol) -> Symbol:
        proxy = terminal_proxy.get(terminal)
        if proxy is None:
            proxy = fresh("T")
            terminal_proxy[terminal] = proxy
            emit(proxy, (terminal,))
        return proxy

    for production in grammar.productions:
        lhs = table[production.lhs.name]
        rhs = [table[s.name] for s in production.rhs]
        if len(rhs) == 1:
            # After unit removal a length-1 rhs must be a terminal.
            emit(lhs, tuple(rhs))
            continue
        # Lift terminals, then binarise.
        lifted = [s if s.is_nonterminal else proxy_for(s) for s in rhs]
        while len(lifted) > 2:
            helper = fresh("B")
            emit(helper, (lifted[-2], lifted[-1]))
            lifted = lifted[:-2] + [helper]
        emit(lhs, tuple(lifted))

    productions = [Production(i, lhs, rhs) for i, (lhs, rhs) in enumerate(new_rules)]
    cnf = Grammar(table, productions, start, name=grammar.name)
    return CnfGrammar(cnf, accepts_epsilon)


def _remove_unit_productions(grammar: Grammar) -> Grammar:
    """Replace A -> B chains by inlining B's non-unit alternatives."""
    # unit_reach[A] = all B with A =>* B via unit productions (incl. A).
    unit_reach: Dict[Symbol, Set[Symbol]] = {
        nt: {nt} for nt in grammar.nonterminals
    }
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if len(production.rhs) == 1 and production.rhs[0].is_nonterminal:
                for source, reach in unit_reach.items():
                    if production.lhs in reach and production.rhs[0] not in reach:
                        reach.add(production.rhs[0])
                        changed = True
    new_rules: List[Tuple[Symbol, Tuple[Symbol, ...]]] = []
    seen: Set[Tuple[Symbol, Tuple[Symbol, ...]]] = set()
    for source, reach in unit_reach.items():
        for target in reach:
            for production in grammar.productions_for(target):
                if len(production.rhs) == 1 and production.rhs[0].is_nonterminal:
                    continue
                key = (source, production.rhs)
                if key not in seen:
                    seen.add(key)
                    new_rules.append(key)
    productions = [Production(i, lhs, rhs) for i, (lhs, rhs) in enumerate(new_rules)]
    return Grammar(grammar.symbols, productions, grammar.start,
                   grammar.precedence, grammar.name)


def _renumber(productions: List[Production]) -> List[Production]:
    return [
        Production(i, p.lhs, p.rhs, p.prec_symbol) for i, p in enumerate(productions)
    ]

"""The :class:`Grammar` container and grammar augmentation.

A :class:`Grammar` owns a :class:`~repro.grammar.symbols.SymbolTable`, an
ordered list of :class:`~repro.grammar.production.Production` objects, a
start symbol, and optional operator-precedence declarations.

LR constructions in this library always operate on an *augmented* grammar:
one whose production 0 is ``S' -> S $end`` for a fresh ``S'``.  Appending
the explicit end marker (the paper's ``⊣``) to the start production is the
formulation DeRemer & Pennello use; it makes end-of-input an ordinary
directly-read terminal, so no special-casing is needed anywhere in the
look-ahead machinery.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import GrammarValidationError, ProductionError
from .production import Production
from .symbols import EOF_NAME, Symbol, SymbolIds, SymbolTable


class Assoc(enum.Enum):
    """Operator associativity for precedence-based conflict resolution."""

    LEFT = "left"
    RIGHT = "right"
    NONASSOC = "nonassoc"


class Precedence:
    """Precedence level and associativity attached to a terminal."""

    __slots__ = ("level", "assoc")

    def __init__(self, level: int, assoc: Assoc):
        self.level = level
        self.assoc = assoc

    def __repr__(self) -> str:
        return f"Precedence(level={self.level}, assoc={self.assoc.value})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Precedence):
            return NotImplemented
        return self.level == other.level and self.assoc == other.assoc

    def __hash__(self) -> int:
        # Must stay consistent with __eq__ (defining __eq__ alone would
        # set __hash__ = None and make Precedence unusable in sets/dicts).
        return hash((self.level, self.assoc))


class Grammar:
    """An immutable-after-construction context-free grammar.

    Build instances with :class:`~repro.grammar.builder.GrammarBuilder` or
    :func:`~repro.grammar.reader.load_grammar`; the constructor here expects
    fully formed parts and validates their consistency.
    """

    def __init__(
        self,
        symbols: SymbolTable,
        productions: Sequence[Production],
        start: Symbol,
        precedence: Optional[Dict[Symbol, Precedence]] = None,
        name: str = "",
    ):
        if start.is_terminal:
            raise GrammarValidationError(f"start symbol {start.name!r} must be a nonterminal")
        if not productions:
            raise GrammarValidationError("grammar has no productions")
        self.symbols = symbols
        self.productions: Tuple[Production, ...] = tuple(productions)
        self.start = start
        self.precedence: Dict[Symbol, Precedence] = dict(precedence or {})
        self.name = name

        self._validate()

        # Index: nonterminal -> its productions, in declaration order.
        self._by_lhs: Dict[Symbol, List[Production]] = {nt: [] for nt in symbols.nonterminals}
        for production in self.productions:
            self._by_lhs[production.lhs].append(production)

        # Dense-ID layout snapshot (terminals 0..T-1, nonterminals
        # T..T+N-1) and the productions' ID mirrors.  Everything inside
        # the LR pipeline runs on these ints; Symbols only re-enter at
        # the public API boundary.
        self.ids = SymbolIds(self.symbols)
        for production in self.productions:
            production.bind_ids(self.ids)
        # nt_id -> productions, the int-indexed twin of _by_lhs.
        self._by_lhs_ntid: List[List[Production]] = [
            self._by_lhs[nt] for nt in self.ids.nonterminals
        ]

    def _validate(self) -> None:
        table_symbols = set(self.symbols)
        for production in self.productions:
            if production.lhs not in table_symbols:
                raise ProductionError(f"production {production}: lhs not in symbol table")
            for symbol in production.rhs:
                if symbol not in table_symbols:
                    raise ProductionError(
                        f"production {production}: rhs symbol {symbol.name!r} not in symbol table"
                    )
        if self.start not in table_symbols:
            raise GrammarValidationError(f"start symbol {self.start.name!r} not in symbol table")

    # -- basic accessors ---------------------------------------------------

    @property
    def terminals(self) -> List[Symbol]:
        return self.symbols.terminals

    @property
    def nonterminals(self) -> List[Symbol]:
        return self.symbols.nonterminals

    def productions_for(self, nonterminal: Symbol) -> List[Production]:
        """All productions whose left-hand side is *nonterminal*."""
        return self._by_lhs.get(nonterminal, [])

    def productions_for_ntid(self, nt_id: int) -> List[Production]:
        """All productions for the nonterminal with dense ID *nt_id*."""
        return self._by_lhs_ntid[nt_id]

    def __iter__(self):
        return iter(self.productions)

    def __len__(self) -> int:
        return len(self.productions)

    def __str__(self) -> str:
        lines = [f"start: {self.start.name}"]
        lines.extend(str(p) for p in self.productions)
        return "\n".join(lines)

    # -- augmentation ------------------------------------------------------

    @property
    def is_augmented(self) -> bool:
        """True if production 0 is ``S' -> S $end`` with S' used nowhere else."""
        if EOF_NAME not in self.symbols:
            return False
        p0 = self.productions[0]
        eof = self.symbols[EOF_NAME]
        if len(p0.rhs) != 2 or p0.rhs[1] is not eof:
            return False
        aug = p0.lhs
        if any(p.lhs is aug for p in self.productions[1:]):
            return False
        if any(aug in p.rhs for p in self.productions):
            return False
        return self.start is aug

    @property
    def eof(self) -> Symbol:
        """The end-of-input terminal (only defined on augmented grammars)."""
        return self.symbols[EOF_NAME]

    @property
    def original_start(self) -> Symbol:
        """The user's start symbol (before augmentation, if any)."""
        if self.is_augmented:
            return self.productions[0].rhs[0]
        return self.start

    def augmented(self) -> "Grammar":
        """Return an augmented copy of this grammar (self if already augmented).

        Adds a fresh start symbol ``S'``, the end marker ``$end``, and the
        production ``S' -> S $end`` at index 0.  All existing Symbol objects
        are shared; production indices shift by one.
        """
        if self.is_augmented:
            return self
        aug_start = self.symbols.fresh_nonterminal(self.start.name)
        eof = self.symbols.terminal(EOF_NAME)
        new_productions = [Production(0, aug_start, (self.start, eof))]
        for i, production in enumerate(self.productions, start=1):
            new_productions.append(
                Production(i, production.lhs, production.rhs, production.prec_symbol)
            )
        return Grammar(self.symbols, new_productions, aug_start, self.precedence, self.name)

    # -- convenience -------------------------------------------------------

    def production_set(self) -> "set[Tuple[Symbol, Tuple[Symbol, ...]]]":
        """The set of (lhs, rhs) pairs, ignoring indices — for equality checks."""
        return {(p.lhs, p.rhs) for p in self.productions}

    def stats(self) -> Dict[str, int]:
        """Headline size statistics used throughout the benchmark harness."""
        return {
            "terminals": len(self.terminals),
            "nonterminals": len(self.nonterminals),
            "productions": len(self.productions),
            "rhs_symbols": sum(len(p.rhs) for p in self.productions),
        }


def iterate_symbols(productions: Iterable[Production]) -> Iterable[Symbol]:
    """Yield every symbol occurrence in *productions* (lhs first, then rhs)."""
    for production in productions:
        yield production.lhs
        yield from production.rhs

"""Grammar linting: the warnings a practical generator emits.

Collects, in one pass, the diagnostics yacc/bison print at build time:

- ``unused-terminal``: declared but never used on any right-hand side
  (excluding pure %prec handles, which are reported separately);
- ``unreachable``: nonterminal not derivable from the start symbol;
- ``non-generating``: nonterminal deriving no terminal string;
- ``never-reduced``: production that no parse can ever use (its lhs is
  useless, or the production references useless symbols);
- ``derivation-cycle``: ``A =>+ A`` (the grammar is ambiguous and cannot
  be LR(k));
- ``duplicate-production``: textually identical productions;
- ``prec-only-terminal``: terminal used only as a %prec handle (usually
  intended, reported informationally).

Each finding is a :class:`LintWarning` with a machine-readable code, so
tools can filter; ``lint(grammar)`` returns them most-severe first.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set, Tuple

from .grammar import Grammar
from .production import Production
from .properties import cyclic_nonterminals
from .symbols import Symbol
from .transforms import generating_nonterminals, reachable_symbols

#: Severity order (index = rank; lower is more severe).
_SEVERITIES = ["error", "warning", "info"]


class LintWarning(NamedTuple):
    code: str
    severity: str  # "error" | "warning" | "info"
    message: str
    symbol: "Symbol | None" = None
    production: "Production | None" = None

    def __str__(self) -> str:
        return f"{self.severity}: [{self.code}] {self.message}"


def lint(grammar: Grammar) -> List[LintWarning]:
    """All findings for *grammar*, most severe first (stable otherwise)."""
    if grammar.is_augmented:
        # Lint the user's view: augmentation artifacts are not findings.
        user_productions = grammar.productions[1:]
    else:
        user_productions = grammar.productions

    findings: List[LintWarning] = []
    generating = generating_nonterminals(grammar)
    reachable = reachable_symbols(grammar)
    cyclic = cyclic_nonterminals(grammar)

    prec_handles: Set[Symbol] = set()
    used_in_rhs: Set[Symbol] = set()
    for production in user_productions:
        used_in_rhs.update(production.rhs)
        if production.prec_symbol is not None:
            prec_handles.add(production.prec_symbol)
    prec_handles.update(grammar.precedence)

    for nonterminal in grammar.nonterminals:
        if grammar.is_augmented and nonterminal is grammar.start:
            continue
        if nonterminal not in generating:
            findings.append(LintWarning(
                "non-generating", "error",
                f"nonterminal {nonterminal.name!r} derives no terminal string",
                symbol=nonterminal,
            ))
        if nonterminal not in reachable:
            findings.append(LintWarning(
                "unreachable", "warning",
                f"nonterminal {nonterminal.name!r} is unreachable from the start symbol",
                symbol=nonterminal,
            ))
        if nonterminal in cyclic:
            findings.append(LintWarning(
                "derivation-cycle", "error",
                f"nonterminal {nonterminal.name!r} derives itself "
                f"(the grammar is ambiguous and cannot be LR(k))",
                symbol=nonterminal,
            ))

    for terminal in grammar.terminals:
        if terminal.is_eof:
            continue
        if terminal in used_in_rhs:
            continue
        if terminal in prec_handles:
            findings.append(LintWarning(
                "prec-only-terminal", "info",
                f"terminal {terminal.name!r} is used only as a %prec handle",
                symbol=terminal,
            ))
        else:
            findings.append(LintWarning(
                "unused-terminal", "warning",
                f"terminal {terminal.name!r} is never used",
                symbol=terminal,
            ))

    useful = {
        nt for nt in grammar.nonterminals if nt in generating and nt in reachable
    }
    for production in user_productions:
        if production.lhs not in useful or any(
            s.is_nonterminal and s not in useful for s in production.rhs
        ):
            findings.append(LintWarning(
                "never-reduced", "warning",
                f"production [{production}] can never take part in a parse",
                production=production,
            ))

    seen: Dict[Tuple[Symbol, Tuple[Symbol, ...]], Production] = {}
    for production in user_productions:
        key = (production.lhs, production.rhs)
        if key in seen:
            findings.append(LintWarning(
                "duplicate-production", "warning",
                f"production [{production}] duplicates production "
                f"{seen[key].index}",
                production=production,
            ))
        else:
            seen[key] = production

    findings.sort(key=lambda w: _SEVERITIES.index(w.severity))
    return findings


def lint_report(grammar: Grammar) -> str:
    """Human-readable lint report ('clean' when nothing found)."""
    findings = lint(grammar)
    if not findings:
        return "clean: no lint findings"
    return "\n".join(str(w) for w in findings)

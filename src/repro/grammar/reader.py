"""Parsing of textual grammar descriptions.

Two formats are accepted, distinguished automatically:

**Yacc-like format** (the format used by yacc/bison and, modulo actions,
by Menhir) — recognised by the presence of a ``%%`` section mark::

    %token NUM ID
    %left '+' '-'
    %left '*' '/'
    %start expr
    %%
    expr : expr '+' expr
         | expr '*' expr
         | NUM
         | %empty
         ;

Declarations: ``%token``, ``%left``, ``%right``, ``%nonassoc``, ``%start``,
``%name`` (grammar name).  Inside rules, ``%prec TERMINAL`` overrides the
production's precedence and ``%empty`` denotes an epsilon alternative.  The
terminating ``;`` is optional before another rule or the end of input.
A second ``%%`` and anything after it (the yacc code section) is ignored.

**Arrow format** — one rule per line, alternatives separated by ``|``::

    # a comment
    E -> E + T | T
    T -> T * F | F
    F -> ( E ) | id
    A -> %empty

``%start``/``%name``/``%token``/``%left``/``%right``/``%nonassoc`` lines are
also accepted in this format.  Any name that never appears on a left-hand
side is a terminal.

**EBNF suffix sugar** (both formats): a bare rhs name may carry one
suffix — ``X?`` (optional), ``X*`` (possibly-empty list), ``X+``
(non-empty list).  Each desugars once into a fresh nonterminal
(``X_opt`` / ``X_list`` / ``X_nonempty``) with left-recursive rules, the
LALR-friendly shape.  Quoted literals are exempt, so a terminal *named*
``x*`` stays expressible as ``'x*'``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from .builder import GrammarBuilder
from .errors import GrammarSyntaxError
from .grammar import Grammar
from .lexer import (
    ARROW,
    CHARLIT,
    COLON,
    DIRECTIVE,
    EOF,
    IDENT,
    MARK,
    NEWLINE,
    PIPE,
    SEMI,
    Token,
    tokenize,
)


def load_grammar(text: str, name: str = "", augment: bool = False) -> Grammar:
    """Parse *text* into a :class:`Grammar` (auto-detecting the format)."""
    tokens = tokenize(text)
    if any(t.kind == MARK for t in tokens):
        parser = _YaccParser(tokens, name)
    else:
        parser = _ArrowParser(tokens, name)
    return parser.parse().build(augment=augment)


def load_grammar_file(path: "str | os.PathLike", augment: bool = False) -> Grammar:
    """Read a grammar description from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    default_name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return load_grammar(text, name=default_name, augment=augment)


#: EBNF suffix -> (generated-name suffix, rule templates).  Desugarings
#: are left-recursive on purpose: right recursion costs LR parsers stack
#: depth, and left-recursive lists are the LALR idiom.
_EBNF_SUFFIXES = {"?": "_opt", "*": "_list", "+": "_nonempty"}


class _ParserBase:
    """Shared token-stream plumbing for the two format parsers."""

    def __init__(self, tokens: List[Token], name: str):
        self.tokens = tokens
        self.pos = 0
        self.builder = GrammarBuilder(name)
        self.saw_rule = False
        # EBNF sugar bookkeeping: (base symbol, op) -> generated name.
        self._ebnf_generated: "dict[tuple[str, str], str]" = {}

    def maybe_desugar(self, token: Token) -> str:
        """Resolve EBNF suffix sugar on a bare IDENT rhs symbol.

        ``X?`` / ``X*`` / ``X+`` become fresh nonterminals with the
        standard optional / possibly-empty-list / non-empty-list rules
        (generated once per base-and-op).  Quoted literals are exempt, so
        a terminal *named* ``x*`` is still expressible as ``'x*'``.
        """
        text = token.text
        if token.kind != IDENT or len(text) < 2 or text[-1] not in _EBNF_SUFFIXES:
            return text
        base, op = text[:-1], text[-1]
        if base[-1] in _EBNF_SUFFIXES:
            raise self.error(f"stacked EBNF suffixes in {text!r} are not supported")
        key = (base, op)
        generated = self._ebnf_generated.get(key)
        if generated is not None:
            return generated
        generated = f"{base}{_EBNF_SUFFIXES[op]}"
        self._ebnf_generated[key] = generated
        if op == "?":
            self.builder.rule(generated, [])
            self.builder.rule(generated, [base])
        elif op == "*":
            self.builder.rule(generated, [])
            self.builder.rule(generated, [generated, base])
        else:  # +
            self.builder.rule(generated, [base])
            self.builder.rule(generated, [generated, base])
        return generated

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> "GrammarSyntaxError":
        t = self.current
        return GrammarSyntaxError(f"{message} (got {t.kind} {t.text!r})", t.line, t.column)

    def skip_newlines(self) -> None:
        while self.current.kind == NEWLINE:
            self.advance()

    def symbol_name(self) -> str:
        """Consume an IDENT or CHARLIT and return the symbol name."""
        token = self.current
        if token.kind not in (IDENT, CHARLIT):
            raise self.error("expected a symbol name")
        self.advance()
        return token.text

    def handle_declaration(self, directive: str) -> None:
        """Process a %token/%left/%right/%nonassoc/%start/%name/%type line.

        Yacc value-type tags (``%token <num> NUM``) are skipped, and
        ``%type`` lines — pure semantic-type metadata — are ignored
        wholesale, so real-world .y files load unmodified.
        """
        names: List[str] = []
        while self.current.kind in (IDENT, CHARLIT):
            text = self.advance().text
            if text.startswith("<") and text.endswith(">"):
                continue  # value-type tag, not a symbol
            names.append(text)
        if directive == "%type":
            return
        if directive == "%start":
            if len(names) != 1:
                raise self.error("%start expects exactly one name")
            self.builder.start(names[0])
        elif directive == "%name":
            if len(names) != 1:
                raise self.error("%name expects exactly one name")
            self.builder.name = names[0]
        elif directive == "%token":
            self.builder.declare_terminal(*names)
        elif directive == "%left":
            self.builder.left(*names)
        elif directive == "%right":
            self.builder.right(*names)
        elif directive == "%nonassoc":
            self.builder.nonassoc(*names)
        else:  # pragma: no cover - lexer only emits known directives
            raise self.error(f"unexpected directive {directive}")


class _YaccParser(_ParserBase):
    def parse(self) -> GrammarBuilder:
        self._declarations()
        self._rules()
        if not self.saw_rule:
            raise self.error("no rules found after %%")
        return self.builder

    def _declarations(self) -> None:
        while True:
            self.skip_newlines()
            token = self.current
            if token.kind == MARK:
                self.advance()
                return
            if token.kind == EOF:
                raise self.error("expected %% before rules")
            if token.kind == DIRECTIVE:
                self.advance()
                self.handle_declaration(token.text)
            else:
                raise self.error("expected a declaration or %%")

    def _rules(self) -> None:
        while True:
            self.skip_newlines()
            token = self.current
            if token.kind == EOF:
                return
            if token.kind == MARK:  # start of ignored code section
                return
            if token.kind != IDENT:
                raise self.error("expected a rule left-hand side")
            lhs = self.advance().text
            if not self.saw_rule and self.builder._start is None:
                self.builder.start(lhs)
            self.skip_newlines()
            if self.current.kind != COLON:
                raise self.error(f"expected ':' after rule head {lhs!r}")
            self.advance()
            self._alternatives(lhs)
            self.saw_rule = True

    def _alternatives(self, lhs: str) -> None:
        while True:
            rhs, prec = self._alternative()
            self.builder.rule(lhs, rhs, prec=prec)
            self.skip_newlines()
            if self.current.kind == PIPE:
                self.advance()
                continue
            if self.current.kind == SEMI:
                self.advance()
            return

    def _alternative(self) -> Tuple[List[str], Optional[str]]:
        rhs: List[str] = []
        prec: Optional[str] = None
        explicit_empty = False
        while True:
            self.skip_newlines()
            token = self.current
            if token.kind in (IDENT, CHARLIT):
                # An IDENT followed by ':' begins the next rule; stop here.
                if token.kind == IDENT and self._next_significant_is_colon():
                    break
                rhs.append(self.maybe_desugar(self.advance()))
            elif token.kind == DIRECTIVE and token.text == "%empty":
                self.advance()
                explicit_empty = True
            elif token.kind == DIRECTIVE and token.text == "%prec":
                self.advance()
                prec = self.symbol_name()
            else:
                break
        if explicit_empty and rhs:
            raise self.error("%empty cannot be mixed with symbols")
        return rhs, prec

    def _next_significant_is_colon(self) -> bool:
        index = self.pos + 1
        while self.tokens[index].kind == NEWLINE:
            index += 1
        return self.tokens[index].kind == COLON


class _ArrowParser(_ParserBase):
    def parse(self) -> GrammarBuilder:
        while True:
            self.skip_newlines()
            token = self.current
            if token.kind == EOF:
                break
            if token.kind == DIRECTIVE:
                self.advance()
                self.handle_declaration(token.text)
                continue
            self._rule_line()
        if not self.saw_rule:
            raise self.error("no rules found")
        return self.builder

    def _rule_line(self) -> None:
        if self.current.kind not in (IDENT, CHARLIT):
            raise self.error("expected a rule left-hand side")
        lhs = self.advance().text
        if not self.saw_rule and self.builder._start is None:
            self.builder.start(lhs)
        if self.current.kind not in (ARROW, COLON):
            raise self.error(f"expected '->' after {lhs!r}")
        self.advance()
        while True:
            rhs, prec = self._alternative()
            self.builder.rule(lhs, rhs, prec=prec)
            if self.current.kind == PIPE:
                self.advance()
                continue
            break
        if self.current.kind == SEMI:
            self.advance()
        self.saw_rule = True

    def _alternative(self) -> Tuple[List[str], Optional[str]]:
        rhs: List[str] = []
        prec: Optional[str] = None
        explicit_empty = False
        while True:
            token = self.current
            if token.kind in (IDENT, CHARLIT):
                rhs.append(self.maybe_desugar(self.advance()))
            elif token.kind == DIRECTIVE and token.text == "%empty":
                self.advance()
                explicit_empty = True
            elif token.kind == DIRECTIVE and token.text == "%prec":
                self.advance()
                prec = self.symbol_name()
            else:
                break
        if explicit_empty and rhs:
            raise self.error("%empty cannot be mixed with symbols")
        if not rhs and not explicit_empty and prec is None:
            # Allow `A -> |` style?  No: demand explicit %empty for clarity.
            raise self.error("empty alternative; write %empty explicitly")
        return rhs, prec

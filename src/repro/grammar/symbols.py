"""Grammar symbols: terminals, nonterminals, and the reserved markers.

Symbols are interned per :class:`SymbolTable`: within one grammar, each
distinct name maps to exactly one :class:`Symbol` object, so identity
comparison (`is`) and hashing are cheap and symbols can be used freely as
dict keys and set members.

Two names are reserved:

- ``EOF_NAME`` (``"$end"``) — the end-of-input marker appended by grammar
  augmentation.  It is a terminal but cannot appear in user productions.
- ``EPSILON_NAME`` (``"%empty"``) — used only by the text reader to denote
  an empty right-hand side; it never becomes a real symbol.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional

from .errors import SymbolError

EOF_NAME = "$end"
EPSILON_NAME = "%empty"
AUGMENTED_START_SUFFIX = "'"

#: Version of the dense-ID layout scheme below.  Serialised artefacts
#: (cached parse tables) mix this into their fingerprint so a change to
#: the ID assignment invalidates old caches instead of mis-decoding them.
ID_LAYOUT_VERSION = 1


class Symbol:
    """A single grammar symbol.

    Instances are created only through :class:`SymbolTable`; user code should
    never call the constructor directly.

    Attributes:
        name: The symbol's spelling, unique within its table.
        is_terminal: True for terminals (including the EOF marker).
        index: Dense index within the owning table (terminals and
            nonterminals share one index space, in declaration order).
    """

    __slots__ = ("name", "is_terminal", "index")

    def __init__(self, name: str, is_terminal: bool, index: int):
        self.name = name
        self.is_terminal = is_terminal
        self.index = index

    @property
    def is_nonterminal(self) -> bool:
        return not self.is_terminal

    @property
    def is_eof(self) -> bool:
        return self.name == EOF_NAME

    def __repr__(self) -> str:
        kind = "t" if self.is_terminal else "nt"
        return f"Symbol({self.name!r}, {kind})"

    def __str__(self) -> str:
        return self.name

    # Identity semantics: symbols are interned, so object identity is
    # equality.  We still define __lt__ for deterministic sorting in output.
    def __lt__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return (self.is_terminal, self.name) < (other.is_terminal, other.name)


class SymbolTable:
    """Interning table for the symbols of one grammar."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Symbol] = {}
        self._in_order: List[Symbol] = []

    def __len__(self) -> int:
        return len(self._in_order)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._in_order)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Optional[Symbol]:
        """Return the symbol named *name*, or None if absent."""
        return self._by_name.get(name)

    def __getitem__(self, name: str) -> Symbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise SymbolError(f"unknown symbol {name!r}") from None

    def terminal(self, name: str) -> Symbol:
        """Intern *name* as a terminal and return it.

        Raises SymbolError if *name* already exists as a nonterminal.
        """
        return self._intern(name, is_terminal=True)

    def nonterminal(self, name: str) -> Symbol:
        """Intern *name* as a nonterminal and return it.

        Raises SymbolError if *name* already exists as a terminal.
        """
        return self._intern(name, is_terminal=False)

    def _intern(self, name: str, is_terminal: bool) -> Symbol:
        if not name:
            raise SymbolError("symbol name must be non-empty")
        if name == EPSILON_NAME:
            raise SymbolError(f"{EPSILON_NAME!r} is reserved for empty right-hand sides")
        existing = self._by_name.get(name)
        if existing is not None:
            if existing.is_terminal != is_terminal:
                want = "terminal" if is_terminal else "nonterminal"
                have = "terminal" if existing.is_terminal else "nonterminal"
                raise SymbolError(f"symbol {name!r} is a {have}, cannot redeclare as {want}")
            return existing
        symbol = Symbol(name, is_terminal, len(self._in_order))
        self._by_name[name] = symbol
        self._in_order.append(symbol)
        return symbol

    @property
    def terminals(self) -> List[Symbol]:
        return [s for s in self._in_order if s.is_terminal]

    @property
    def nonterminals(self) -> List[Symbol]:
        return [s for s in self._in_order if s.is_nonterminal]

    def fresh_nonterminal(self, base: str) -> Symbol:
        """Intern a nonterminal with a name derived from *base* that does not
        collide with any existing symbol (used by grammar augmentation and
        transforms)."""
        candidate = base + AUGMENTED_START_SUFFIX
        while candidate in self._by_name:
            candidate += AUGMENTED_START_SUFFIX
        return self.nonterminal(candidate)


class SymbolIds:
    """Dense integer IDs for one grammar's symbols — the integer core.

    The hot paths of the DeRemer–Pennello pipeline (LR(0) construction,
    relation building, the Digraph passes, table fill, the parse engine)
    index flat arrays by these IDs instead of hashing :class:`Symbol`
    objects.  The layout (``ID_LAYOUT_VERSION`` 1) is:

    - terminals get ``0 .. num_terminals-1`` (symbol-table order), so a
      terminal's ID doubles as its bit position in the terminal bitmask
      vocabulary (:mod:`repro.core.bitset`);
    - nonterminals get ``num_terminals .. num_symbols-1`` (symbol-table
      order); ``nt_id = sid - num_terminals`` is the dense *nonterminal
      id* used for packed nonterminal-transition encodings
      (``state_id * num_nonterminals + nt_id``).

    A layout is a snapshot taken at :class:`~repro.grammar.grammar.Grammar`
    construction: symbols interned into the shared table afterwards (e.g.
    by augmenting a copy) are simply absent from it.  Symbols re-enter at
    the public API boundary only; everything in between is ints.
    """

    __slots__ = (
        "terminals",
        "nonterminals",
        "num_terminals",
        "num_nonterminals",
        "num_symbols",
        "by_sid",
        "_sid_of",
    )

    def __init__(self, symbols: Iterable[Symbol]):
        self.terminals: List[Symbol] = []
        self.nonterminals: List[Symbol] = []
        for symbol in symbols:
            (self.terminals if symbol.is_terminal else self.nonterminals).append(symbol)
        self.num_terminals = len(self.terminals)
        self.num_nonterminals = len(self.nonterminals)
        self.num_symbols = self.num_terminals + self.num_nonterminals
        #: sid -> Symbol (terminals first, then nonterminals).
        self.by_sid: List[Symbol] = self.terminals + self.nonterminals
        self._sid_of: Dict[Symbol, int] = {
            symbol: sid for sid, symbol in enumerate(self.by_sid)
        }

    def __len__(self) -> int:
        return self.num_symbols

    # -- Symbol -> id (the API boundary pays one hash here, once) ------

    def sid(self, symbol: Symbol) -> int:
        """The dense symbol ID of *symbol* (raises KeyError if absent)."""
        return self._sid_of[symbol]

    def sid_or_none(self, symbol: Symbol) -> Optional[int]:
        """Like :meth:`sid` but None for symbols outside this layout."""
        return self._sid_of.get(symbol)

    def terminal_id(self, terminal: Symbol) -> int:
        """The terminal ID (== sid, by layout) of *terminal*."""
        sid = self._sid_of[terminal]
        if sid >= self.num_terminals:
            raise SymbolError(f"{terminal.name!r} is not a terminal of this layout")
        return sid

    def nonterminal_id(self, nonterminal: Symbol) -> int:
        """The dense nonterminal ID (``sid - num_terminals``)."""
        sid = self._sid_of[nonterminal]
        if sid < self.num_terminals:
            raise SymbolError(f"{nonterminal.name!r} is not a nonterminal of this layout")
        return sid - self.num_terminals

    def sids(self, symbols: Iterable[Symbol]) -> "array":
        """The ID array for a symbol sequence (production right-hand sides)."""
        sid_of = self._sid_of
        return array("i", [sid_of[s] for s in symbols])

    # -- id -> Symbol ---------------------------------------------------

    def symbol(self, sid: int) -> Symbol:
        """The symbol with dense ID *sid*."""
        return self.by_sid[sid]

    def terminal(self, terminal_id: int) -> Symbol:
        return self.terminals[terminal_id]

    def nonterminal(self, nt_id: int) -> Symbol:
        return self.nonterminals[nt_id]

    def is_terminal_sid(self, sid: int) -> bool:
        return sid < self.num_terminals

    # -- misc -----------------------------------------------------------

    def declaration_order(self) -> "array":
        """``order[sid]`` = the symbol's table declaration index — used to
        keep deterministic orderings identical to the Symbol-keyed era."""
        return array("i", [symbol.index for symbol in self.by_sid])

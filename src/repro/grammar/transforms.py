"""Grammar transformations: reduction, epsilon-rule removal.

These are classical substrate algorithms (Hopcroft & Ullman).  They are not
part of the DeRemer–Pennello pipeline itself — LR constructions work on any
grammar — but the benchmark corpus and property tests use them to normalise
randomly generated grammars, and they mirror the operations any practical
grammar-analysis tool ships with.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Set, Tuple

from .errors import GrammarValidationError
from .grammar import Grammar
from .production import Production
from .symbols import Symbol, SymbolTable


def generating_nonterminals(grammar: Grammar) -> Set[Symbol]:
    """Nonterminals that derive at least one terminal string (the paper
    corpus calls these *normed* or *generating* symbols)."""
    generating: Set[Symbol] = set()
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if production.lhs in generating:
                continue
            if all(s.is_terminal or s in generating for s in production.rhs):
                generating.add(production.lhs)
                changed = True
    return generating


def reachable_symbols(grammar: Grammar) -> Set[Symbol]:
    """Symbols reachable from the start symbol via productions."""
    reachable: Set[Symbol] = {grammar.start}
    worklist = [grammar.start]
    while worklist:
        current = worklist.pop()
        for production in grammar.productions_for(current):
            for symbol in production.rhs:
                if symbol not in reachable:
                    reachable.add(symbol)
                    if symbol.is_nonterminal:
                        worklist.append(symbol)
    return reachable


def reduce_grammar(grammar: Grammar) -> Grammar:
    """Return an equivalent grammar without useless symbols.

    Removes (1) non-generating nonterminals, then (2) symbols unreachable
    from the start symbol.  The two passes must run in that order.  Raises
    GrammarValidationError if the language is empty (the start symbol
    generates nothing).
    """
    generating = generating_nonterminals(grammar)
    if grammar.start not in generating:
        raise GrammarValidationError(
            f"start symbol {grammar.start.name!r} generates no terminal string; language is empty"
        )
    surviving = [
        p
        for p in grammar.productions
        if p.lhs in generating
        and all(s.is_terminal or s in generating for s in p.rhs)
    ]
    intermediate = _rebuild(grammar, surviving, grammar.start)

    reachable = reachable_symbols(intermediate)
    final = [
        p
        for p in intermediate.productions
        if p.lhs in reachable and all(s in reachable for s in p.rhs)
    ]
    return _rebuild(intermediate, final, intermediate.start)


def nullable_from_productions(productions: Sequence[Production]) -> Set[Symbol]:
    """Nonterminals that derive epsilon, computed from a production list.

    (The analysis subpackage has the Grammar-level variant; this one is
    needed mid-transform when no Grammar object exists yet.)
    """
    nullable: Set[Symbol] = set()
    changed = True
    while changed:
        changed = False
        for production in productions:
            if production.lhs in nullable:
                continue
            if all(s in nullable for s in production.rhs):
                nullable.add(production.lhs)
                changed = True
    return nullable


def remove_epsilon_rules(grammar: Grammar) -> Grammar:
    """Return a grammar without epsilon productions generating
    ``L(G) - {epsilon}`` — plus, if epsilon was in L(G), a fresh start
    symbol ``S'`` with ``S' -> S | %empty`` so the language is preserved
    exactly.
    """
    if grammar.is_augmented:
        raise GrammarValidationError("epsilon removal expects a non-augmented grammar")
    nullable = nullable_from_productions(grammar.productions)

    new_rules: List[Tuple[Symbol, Tuple[Symbol, ...]]] = []
    seen: Set[Tuple[Symbol, Tuple[Symbol, ...]]] = set()
    for production in grammar.productions:
        nullable_positions = [
            i for i, s in enumerate(production.rhs) if s in nullable
        ]
        # Every subset of nullable occurrences may be dropped.
        for r in range(len(nullable_positions) + 1):
            for dropped in combinations(nullable_positions, r):
                dropped_set = set(dropped)
                rhs = tuple(
                    s for i, s in enumerate(production.rhs) if i not in dropped_set
                )
                if not rhs:
                    continue  # never introduce a new epsilon rule
                key = (production.lhs, rhs)
                if key not in seen:
                    seen.add(key)
                    new_rules.append(key)

    start = grammar.start
    productions = [
        Production(i, lhs, rhs) for i, (lhs, rhs) in enumerate(new_rules)
    ]
    if grammar.start in nullable:
        # epsilon is in the language: add S' -> S | %empty with a fresh S'.
        fresh = grammar.symbols.fresh_nonterminal(grammar.start.name)
        productions = (
            [
                Production(0, fresh, (grammar.start,)),
                Production(1, fresh, ()),
            ]
            + [Production(i + 2, p.lhs, p.rhs) for i, p in enumerate(productions)]
        )
        start = fresh
    return Grammar(grammar.symbols, productions, start, grammar.precedence, grammar.name)


def _rebuild(grammar: Grammar, productions: Sequence[Production], start: Symbol) -> Grammar:
    """Re-number productions and rebuild the symbol table from survivors."""
    table = SymbolTable()
    start_new = table.nonterminal(start.name)
    for production in productions:
        table.nonterminal(production.lhs.name)
    for production in productions:
        for symbol in production.rhs:
            if symbol.is_terminal:
                table.terminal(symbol.name)
            else:
                table.nonterminal(symbol.name)
    renumbered = [
        Production(
            i,
            table[p.lhs.name],
            [table[s.name] for s in p.rhs],
            table.get(p.prec_symbol.name) if p.prec_symbol else None,
        )
        for i, p in enumerate(productions)
    ]
    precedence = {
        table[s.name]: prec
        for s, prec in grammar.precedence.items()
        if s.name in table
    }
    if not renumbered:
        raise GrammarValidationError("reduction removed every production")
    return Grammar(table, renumbered, start_new, precedence, grammar.name)

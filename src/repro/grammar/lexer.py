"""Tokenizer for the textual grammar formats understood by the reader.

Produces a flat token stream with line/column positions.  Both supported
formats (yacc-like and arrow notation) share this lexer; the reader decides
how to interpret the stream.

Token kinds:
    IDENT       bare word (identifier or any punctuation-free symbol name)
    CHARLIT     quoted character/string literal: '+' or "=="
    DIRECTIVE   %token %left %right %nonassoc %start %prec %empty %name
    COLON       :
    SEMI        ;
    PIPE        |
    ARROW       ->  (also accepts the Unicode arrow)
    MARK        %%
    NEWLINE     end of a (non-empty) line; meaningful in arrow format
    EOF         end of input
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from .errors import GrammarSyntaxError

IDENT = "IDENT"
CHARLIT = "CHARLIT"
DIRECTIVE = "DIRECTIVE"
COLON = "COLON"
SEMI = "SEMI"
PIPE = "PIPE"
ARROW = "ARROW"
MARK = "MARK"
NEWLINE = "NEWLINE"
EOF = "EOF"

_KNOWN_DIRECTIVES = {
    "%token",
    "%left",
    "%right",
    "%nonassoc",
    "%start",
    "%prec",
    "%empty",
    "%name",
    "%type",
}

# Characters that terminate a bare symbol name.
_STOP_CHARS = set(" \t\r\n:;|'\"")


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, returning a list ending with an EOF token."""
    return list(iter_tokens(source))


def iter_tokens(source: str) -> Iterator[Token]:
    line = 1
    col = 1
    i = 0
    n = len(source)
    emitted_on_line = False

    def make(kind: str, text: str, start_col: int) -> Token:
        return Token(kind, text, line, start_col)

    while i < n:
        ch = source[i]

        if ch == "\n":
            if emitted_on_line:
                yield make(NEWLINE, "\n", col)
            emitted_on_line = False
            i += 1
            line += 1
            col = 1
            continue

        if ch in " \t\r":
            i += 1
            col += 1
            continue

        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue

        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise GrammarSyntaxError("unterminated comment", line, col)
            skipped = source[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue

        start_col = col
        emitted_on_line = True

        if source.startswith("%%", i):
            yield make(MARK, "%%", start_col)
            i += 2
            col += 2
            continue

        if ch == "%":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            if word not in _KNOWN_DIRECTIVES:
                raise GrammarSyntaxError(f"unknown directive {word!r}", line, start_col)
            yield make(DIRECTIVE, word, start_col)
            col += j - i
            i = j
            continue

        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise GrammarSyntaxError("unterminated literal", line, start_col)
                if source[j] == "\\" and j + 1 < n:
                    buf.append(_unescape(source[j + 1]))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise GrammarSyntaxError("unterminated literal", line, start_col)
            text = "".join(buf)
            if not text:
                raise GrammarSyntaxError("empty literal", line, start_col)
            yield make(CHARLIT, text, start_col)
            col += (j + 1) - i
            i = j + 1
            continue

        if ch == ":":
            yield make(COLON, ":", start_col)
            i += 1
            col += 1
            continue
        if ch == ";":
            yield make(SEMI, ";", start_col)
            i += 1
            col += 1
            continue
        if ch == "|":
            yield make(PIPE, "|", start_col)
            i += 1
            col += 1
            continue
        if source.startswith("->", i):
            yield make(ARROW, "->", start_col)
            i += 2
            col += 2
            continue
        if ch == "→":  # Unicode rightwards arrow
            yield make(ARROW, "->", start_col)
            i += 1
            col += 1
            continue

        # Bare symbol name: read until a stop character.  This permits
        # names like `id`, `NUM`, `(`, `+`, `==`, `expr_list`.
        j = i
        while j < n and source[j] not in _STOP_CHARS and source[j] != "→":
            # `->` terminates a name so `a->b` splits correctly, but a
            # lone `-` (e.g. the minus terminal) is a valid name char.
            if j > i and (source.startswith("->", j) or source[j] in "#%"):
                break
            j += 1
        if j == i:
            raise GrammarSyntaxError(f"unexpected character {ch!r}", line, start_col)
        yield make(IDENT, source[i:j], start_col)
        col += j - i
        i = j

    yield Token(EOF, "", line, col)


def _unescape(ch: str) -> str:
    return {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}.get(ch, ch)

"""Productions (rewrite rules) of a context-free grammar."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .errors import ProductionError
from .symbols import Symbol


class Production:
    """A single rewrite rule ``lhs -> rhs[0] rhs[1] ... rhs[n-1]``.

    Productions are immutable.  ``index`` is the production's position in
    its grammar's production list; index 0 is reserved for the augmented
    start production once the grammar has been augmented.

    Attributes:
        index: Dense index in the owning grammar.
        lhs: Left-hand-side nonterminal.
        rhs: Tuple of symbols; empty tuple for an epsilon production.
        prec_symbol: Terminal whose precedence governs this production for
            conflict resolution (explicit ``%prec`` or the rightmost
            terminal of the rhs); None when no precedence applies.
        lhs_sid / rhs_sids: Dense symbol IDs mirroring ``lhs``/``rhs``,
            bound by the owning :class:`~repro.grammar.grammar.Grammar`
            at construction (see :meth:`bind_ids`); the integer core
            walks ``rhs_sids`` (an ``array('i')``) instead of hashing
            the Symbol views.
    """

    __slots__ = ("index", "lhs", "rhs", "prec_symbol", "lhs_sid", "rhs_sids")

    def __init__(
        self,
        index: int,
        lhs: Symbol,
        rhs: Sequence[Symbol],
        prec_symbol: Optional[Symbol] = None,
    ):
        if lhs.is_terminal:
            raise ProductionError(f"left-hand side {lhs.name!r} must be a nonterminal")
        self.index = index
        self.lhs = lhs
        self.rhs: Tuple[Symbol, ...] = tuple(rhs)
        if prec_symbol is None:
            prec_symbol = self._rightmost_terminal(self.rhs)
        self.prec_symbol = prec_symbol
        # Filled by the owning Grammar (bind_ids); -1 marks "unbound".
        self.lhs_sid: int = -1
        self.rhs_sids: Sequence[int] = ()

    def bind_ids(self, ids) -> None:
        """Record the dense-ID mirror of lhs/rhs under *ids* (a
        :class:`~repro.grammar.symbols.SymbolIds`).  Called by the owning
        grammar; every Grammar constructor creates fresh Production
        objects, so a production is bound to exactly one layout."""
        self.lhs_sid = ids.sid(self.lhs)
        self.rhs_sids = ids.sids(self.rhs)

    @staticmethod
    def _rightmost_terminal(rhs: Tuple[Symbol, ...]) -> Optional[Symbol]:
        for symbol in reversed(rhs):
            if symbol.is_terminal:
                return symbol
        return None

    def __len__(self) -> int:
        return len(self.rhs)

    @property
    def is_epsilon(self) -> bool:
        return not self.rhs

    def __repr__(self) -> str:
        return f"Production({self.index}, {self})"

    def __str__(self) -> str:
        rhs = " ".join(s.name for s in self.rhs) if self.rhs else "%empty"
        return f"{self.lhs.name} -> {rhs}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Production):
            return NotImplemented
        return self.index == other.index and self.lhs is other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return hash((self.index, id(self.lhs), tuple(id(s) for s in self.rhs)))

"""Structural predicates over grammars (reduced, cyclic, recursive, ...).

These feed the grammar corpus's self-checks and the classifier's
diagnostics; cycle detection in particular matters to the LALR pipeline
because a grammar with ``A =>+ A`` cycles is ambiguous and can never be
LR(k).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .grammar import Grammar
from .symbols import Symbol
from .transforms import (
    generating_nonterminals,
    nullable_from_productions,
    reachable_symbols,
)


def is_reduced(grammar: Grammar) -> bool:
    """True iff every symbol is both generating and reachable."""
    generating = generating_nonterminals(grammar)
    if any(nt not in generating for nt in grammar.nonterminals):
        return False
    reachable = reachable_symbols(grammar)
    return all(s in reachable for s in grammar.symbols)


def is_epsilon_free(grammar: Grammar) -> bool:
    """True iff no production (other than an augmented start's) is epsilon."""
    productions = grammar.productions[1:] if grammar.is_augmented else grammar.productions
    return all(p.rhs for p in productions)


def unit_derivation_graph(grammar: Grammar) -> Dict[Symbol, Set[Symbol]]:
    """Edges ``A -> B`` whenever ``A => alpha B beta`` with alpha,beta
    nullable — i.e. A derives B alone in one step (modulo erasures)."""
    nullable = nullable_from_productions(grammar.productions)
    graph: Dict[Symbol, Set[Symbol]] = {nt: set() for nt in grammar.nonterminals}
    for production in grammar.productions:
        non_nullable = [s for s in production.rhs if s not in nullable]
        if len(non_nullable) == 1 and non_nullable[0].is_nonterminal:
            graph[production.lhs].add(non_nullable[0])
        elif not non_nullable:
            for symbol in production.rhs:
                if symbol.is_nonterminal:
                    graph[production.lhs].add(symbol)
    return graph


def has_cycles(grammar: Grammar) -> bool:
    """True iff some nonterminal derives itself: ``A =>+ A``."""
    return bool(cyclic_nonterminals(grammar))


def cyclic_nonterminals(grammar: Grammar) -> Set[Symbol]:
    """All nonterminals on a derivation cycle ``A =>+ A``."""
    graph = unit_derivation_graph(grammar)
    cyclic: Set[Symbol] = set()
    for scc in strongly_connected_components(graph):
        if len(scc) > 1:
            cyclic.update(scc)
        else:
            (only,) = scc
            if only in graph[only]:
                cyclic.add(only)
    return cyclic


def is_proper(grammar: Grammar) -> bool:
    """True iff the grammar is reduced, cycle-free, and epsilon-free."""
    return is_reduced(grammar) and not has_cycles(grammar) and is_epsilon_free(grammar)


def left_recursive_nonterminals(grammar: Grammar) -> Set[Symbol]:
    """Nonterminals A with ``A =>+ A gamma`` (immediate or indirect),
    accounting for nullable prefixes."""
    nullable = nullable_from_productions(grammar.productions)
    graph: Dict[Symbol, Set[Symbol]] = {nt: set() for nt in grammar.nonterminals}
    for production in grammar.productions:
        for symbol in production.rhs:
            if symbol.is_terminal:
                break
            graph[production.lhs].add(symbol)
            if symbol not in nullable:
                break
    recursive: Set[Symbol] = set()
    for scc in strongly_connected_components(graph):
        if len(scc) > 1:
            recursive.update(scc)
        else:
            (only,) = scc
            if only in graph[only]:
                recursive.add(only)
    return recursive


def right_recursive_nonterminals(grammar: Grammar) -> Set[Symbol]:
    """Nonterminals A with ``A =>+ gamma A`` (immediate or indirect)."""
    nullable = nullable_from_productions(grammar.productions)
    graph: Dict[Symbol, Set[Symbol]] = {nt: set() for nt in grammar.nonterminals}
    for production in grammar.productions:
        for symbol in reversed(production.rhs):
            if symbol.is_terminal:
                break
            graph[production.lhs].add(symbol)
            if symbol not in nullable:
                break
    recursive: Set[Symbol] = set()
    for scc in strongly_connected_components(graph):
        if len(scc) > 1:
            recursive.update(scc)
        else:
            (only,) = scc
            if only in graph[only]:
                recursive.add(only)
    return recursive


def is_finite_language(grammar: Grammar) -> bool:
    """True iff L(G) is finite — i.e. no *useful* nonterminal is recursive.

    Recursion through useless symbols does not make the language infinite,
    so the check runs on the reachable, generating core of the grammar.
    """
    generating = generating_nonterminals(grammar)
    reachable = reachable_symbols(grammar)
    useful = {
        nt for nt in grammar.nonterminals if nt in generating and nt in reachable
    }
    graph: Dict[Symbol, Set[Symbol]] = {nt: set() for nt in useful}
    for production in grammar.productions:
        if production.lhs not in useful:
            continue
        if not all(s.is_terminal or s in useful for s in production.rhs):
            continue
        for symbol in production.rhs:
            if symbol.is_nonterminal:
                graph[production.lhs].add(symbol)
    for scc in strongly_connected_components(graph):
        if len(scc) > 1:
            return False
        (only,) = scc
        if only in graph[only]:
            return False
    return True


def strongly_connected_components(
    graph: Dict[Symbol, Set[Symbol]]
) -> List[Tuple[Symbol, ...]]:
    """Tarjan's algorithm, iterative, over an adjacency-set mapping.

    Returned components are in reverse topological order (a component is
    emitted only after all components it can reach).
    """
    index: Dict[Symbol, int] = {}
    lowlink: Dict[Symbol, int] = {}
    on_stack: Set[Symbol] = set()
    stack: List[Symbol] = []
    result: List[Tuple[Symbol, ...]] = []
    counter = 0

    for root in graph:
        if root in index:
            continue
        work: List[Tuple[Symbol, "list"]] = [(root, list(graph.get(root, ())))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            while edges:
                succ = edges.pop()
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, list(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node:
                        break
                result.append(tuple(component))
    return result

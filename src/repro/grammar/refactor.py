"""LL-enabling grammar refactorings: left-recursion removal, left factoring.

The LR side of this library *likes* left recursion (constant stack) and
the LL side cannot tolerate it at all, so a grammar workbench needs the
classical transforms that move a grammar toward LL(1):

- :func:`remove_left_recursion` — Paull's algorithm (the dragon-book
  ordering): eliminate indirect left recursion by substitution, then
  immediate left recursion by introducing tail nonterminals
  (``A -> A α | β`` becomes ``A -> β A'; A' -> α A' | ε``).
  Requires a proper-ish input: cycle-free and ε-free (run
  :func:`~repro.grammar.transforms.remove_epsilon_rules` first if
  needed); raises otherwise.
- :func:`left_factor` — repeatedly pull maximal common prefixes of a
  nonterminal's alternatives into fresh nonterminals
  (``A -> x β | x γ`` becomes ``A -> x A'; A' -> β | γ``).

Both preserve the language exactly (property-tested against bounded
enumeration) but not derivation trees — they are *recognition*
transforms, as in every compiler text.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .errors import GrammarValidationError
from .grammar import Grammar
from .production import Production
from .properties import has_cycles
from .symbols import Symbol, SymbolTable
from .transforms import nullable_from_productions

Rhs = Tuple[Symbol, ...]


def remove_left_recursion(grammar: Grammar) -> Grammar:
    """An equivalent grammar with no left recursion (immediate or indirect)."""
    if grammar.is_augmented:
        raise GrammarValidationError("refactor the user grammar, not its augmented form")
    if has_cycles(grammar):
        raise GrammarValidationError(
            "left-recursion removal requires a cycle-free grammar (A =>+ A found)"
        )
    if any(not p.rhs for p in grammar.productions):
        nullable = nullable_from_productions(grammar.productions)
        # ε-rules are tolerable only when they can never expose left
        # recursion through a nullable prefix; demanding ε-freeness keeps
        # the classical precondition and the proof simple.
        if nullable:
            raise GrammarValidationError(
                "left-recursion removal requires an epsilon-free grammar; "
                "apply remove_epsilon_rules first"
            )

    table = SymbolTable()
    for nonterminal in grammar.nonterminals:
        table.nonterminal(nonterminal.name)
    for terminal in grammar.terminals:
        table.terminal(terminal.name)

    order: List[Symbol] = [table[nt.name] for nt in grammar.nonterminals]
    rules: Dict[Symbol, List[Rhs]] = {nt: [] for nt in order}
    for production in grammar.productions:
        rules[table[production.lhs.name]].append(
            tuple(table[s.name] for s in production.rhs)
        )

    def fresh(base: Symbol) -> Symbol:
        return table.fresh_nonterminal(base.name)

    new_order = list(order)
    for i, a_i in enumerate(order):
        # 1. substitute earlier nonterminals at the front.
        changed = True
        while changed:
            changed = False
            expanded: List[Rhs] = []
            for rhs in rules[a_i]:
                if rhs and rhs[0] in order[:i]:
                    head = rhs[0]
                    for replacement in rules[head]:
                        expanded.append(tuple(replacement) + tuple(rhs[1:]))
                    changed = True
                else:
                    expanded.append(tuple(rhs))
            rules[a_i] = expanded
        # 2. eliminate immediate left recursion on a_i.
        recursive = [rhs[1:] for rhs in rules[a_i] if rhs and rhs[0] is a_i]
        if not recursive:
            continue
        non_recursive = [rhs for rhs in rules[a_i] if not rhs or rhs[0] is not a_i]
        if not non_recursive:
            raise GrammarValidationError(
                f"nonterminal {a_i.name!r} is only left-recursive; "
                f"it generates nothing"
            )
        tail = fresh(a_i)
        new_order.append(tail)
        rules[a_i] = [tuple(rhs) + (tail,) for rhs in non_recursive]
        rules[tail] = [tuple(alpha) + (tail,) for alpha in recursive] + [()]

    return _materialise(grammar, table, new_order, rules)


def left_factor(grammar: Grammar) -> Grammar:
    """An equivalent grammar whose alternatives share no common prefix."""
    if grammar.is_augmented:
        raise GrammarValidationError("refactor the user grammar, not its augmented form")

    table = SymbolTable()
    for nonterminal in grammar.nonterminals:
        table.nonterminal(nonterminal.name)
    for terminal in grammar.terminals:
        table.terminal(terminal.name)

    rules: Dict[Symbol, List[Rhs]] = {}
    worklist: List[Symbol] = []
    for nonterminal in grammar.nonterminals:
        mapped = table[nonterminal.name]
        rules[mapped] = [
            tuple(table[s.name] for s in p.rhs)
            for p in grammar.productions_for(nonterminal)
        ]
        worklist.append(mapped)

    order = list(worklist)
    while worklist:
        nonterminal = worklist.pop(0)
        groups: Dict[Symbol, List[Rhs]] = {}
        for rhs in rules[nonterminal]:
            if rhs:
                groups.setdefault(rhs[0], []).append(rhs)
        factored = False
        new_alternatives: List[Rhs] = [r for r in rules[nonterminal] if not r]
        for head, group in groups.items():
            if len(group) == 1:
                new_alternatives.append(group[0])
                continue
            # maximal common prefix of the group
            prefix = list(group[0])
            for rhs in group[1:]:
                k = 0
                while k < len(prefix) and k < len(rhs) and prefix[k] is rhs[k]:
                    k += 1
                prefix = prefix[:k]
            assert prefix, "grouped by first symbol, prefix cannot be empty"
            tail = table.fresh_nonterminal(nonterminal.name)
            order.append(tail)
            rules[tail] = [tuple(rhs[len(prefix):]) for rhs in group]
            new_alternatives.append(tuple(prefix) + (tail,))
            worklist.append(tail)  # the tails may share prefixes again
            factored = True
        rules[nonterminal] = new_alternatives
        if factored and nonterminal not in worklist:
            worklist.append(nonterminal)

    return _materialise(grammar, table, order, rules)


def _materialise(
    source: Grammar,
    table: SymbolTable,
    order: List[Symbol],
    rules: Dict[Symbol, List[Rhs]],
) -> Grammar:
    productions: List[Production] = []
    seen = set()
    for nonterminal in order:
        for rhs in rules.get(nonterminal, []):
            key = (nonterminal, tuple(rhs))
            if key in seen:
                continue
            seen.add(key)
            productions.append(Production(len(productions), nonterminal, rhs))
    precedence = {
        table[s.name]: prec for s, prec in source.precedence.items()
        if s.name in table
    }
    return Grammar(
        table, productions, table[source.start.name], precedence, source.name
    )

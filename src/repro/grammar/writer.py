"""Serialisation of grammars back to text (round-trips with the reader)."""

from __future__ import annotations

from typing import Dict, List

from .grammar import Assoc, Grammar
from .symbols import EOF_NAME, Symbol

_BARE_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$")


def _spell(symbol: Symbol) -> str:
    """Quote a terminal name when it would not survive bare tokenisation."""
    name = symbol.name
    if symbol.is_terminal and not all(c in _BARE_SAFE for c in name):
        escaped = name.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return name


def _user_view(grammar: Grammar) -> "tuple[list, Symbol]":
    """Productions and start symbol with any augmentation stripped."""
    if grammar.is_augmented:
        return list(grammar.productions[1:]), grammar.original_start
    return list(grammar.productions), grammar.start


def write_arrow(grammar: Grammar) -> str:
    """Render *grammar* in arrow format."""
    productions, start = _user_view(grammar)
    lines: List[str] = []
    if grammar.name:
        lines.append(f"%name {grammar.name}")
    lines.extend(_precedence_lines(grammar))
    lines.append(f"%start {start.name}")
    # Declare terminals that never appear on a rhs (they would otherwise be
    # lost) and all terminals with unusual names used only via quoting.
    used = {s for p in productions for s in p.rhs}
    unused_terminals = [t for t in grammar.terminals if t not in used and t.name != EOF_NAME]
    if unused_terminals:
        lines.append("%token " + " ".join(_spell(t) for t in unused_terminals))
    for production in productions:
        rhs = " ".join(_spell(s) for s in production.rhs) if production.rhs else "%empty"
        suffix = _prec_suffix(production)
        lines.append(f"{production.lhs.name} -> {rhs}{suffix}")
    return "\n".join(lines) + "\n"


def write_yacc(grammar: Grammar) -> str:
    """Render *grammar* in yacc-like format."""
    productions, start = _user_view(grammar)
    lines: List[str] = []
    if grammar.name:
        lines.append(f"%name {grammar.name}")
    plain_terminals = [
        t
        for t in grammar.terminals
        if t not in grammar.precedence and t.name != EOF_NAME
    ]
    if plain_terminals:
        lines.append("%token " + " ".join(_spell(t) for t in plain_terminals))
    lines.extend(_precedence_lines(grammar))
    lines.append(f"%start {start.name}")
    lines.append("%%")
    by_lhs: Dict[Symbol, List] = {}
    order: List[Symbol] = []
    for production in productions:
        if production.lhs not in by_lhs:
            by_lhs[production.lhs] = []
            order.append(production.lhs)
        by_lhs[production.lhs].append(production)
    for lhs in order:
        alts = by_lhs[lhs]
        head = f"{lhs.name} :"
        for i, production in enumerate(alts):
            rhs = " ".join(_spell(s) for s in production.rhs) if production.rhs else "%empty"
            lead = head if i == 0 else " " * (len(lhs.name) + 1) + "|"
            lines.append(f"{lead} {rhs}{_prec_suffix(production)}")
        lines.append(" " * (len(lhs.name) + 1) + ";")
    return "\n".join(lines) + "\n"


def _prec_suffix(production) -> str:
    """Emit %prec only when it differs from the rightmost-terminal default."""
    default = production._rightmost_terminal(production.rhs)
    if production.prec_symbol is not None and production.prec_symbol is not default:
        return f" %prec {_spell(production.prec_symbol)}"
    return ""


def _precedence_lines(grammar: Grammar) -> List[str]:
    levels: Dict[int, List[Symbol]] = {}
    assoc_of: Dict[int, Assoc] = {}
    for symbol, prec in grammar.precedence.items():
        levels.setdefault(prec.level, []).append(symbol)
        assoc_of[prec.level] = prec.assoc
    lines = []
    for level in sorted(levels):
        names = " ".join(_spell(s) for s in sorted(levels[level], key=lambda s: s.name))
        lines.append(f"%{assoc_of[level].value} {names}")
    return lines

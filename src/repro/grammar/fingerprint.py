"""Content fingerprints for grammars and productions — one hashing home.

Three subsystems used to hash grammars independently: the table cache
keyed entries on :func:`grammar_fingerprint` (then private to
:mod:`repro.tables.serialize`), the fuzz corpus derived failure
identities from the grammar's arrow text, and the incremental pipeline
needs per-production content hashes to compose per-phase input keys.
This module is the single source for all of them.

Stability contracts:

- :func:`grammar_fingerprint` is **byte-for-byte stable** with the
  payload the table cache has always used — existing on-disk cache
  entries keep hitting across this refactor (asserted by the cache-key
  stability test).
- :func:`text_fingerprint` reproduces the corpus failure-identity digest
  (``sha256(part1 + b"\\x00" + part2 + ...)``) so persisted corpus
  filenames stay valid.

Per-production fingerprints are *content* hashes: they cover the rule
itself (lhs, rhs spelling, effective precedence symbol) but not the
production's index, so reordering-insensitive comparisons and the
writer/reader roundtrip test can reason per rule.
"""

from __future__ import annotations

import hashlib
import json
from typing import List

from .grammar import Grammar
from .production import Production
from .symbols import ID_LAYOUT_VERSION

__all__ = [
    "grammar_fingerprint",
    "grammar_content_key",
    "grammar_text",
    "production_fingerprint",
    "production_fingerprints",
    "text_fingerprint",
]


def grammar_fingerprint(grammar: Grammar) -> str:
    """A stable hash of the grammar's rules, start symbol and precedence.

    The symbol-ID layout version is part of the payload: a change to how
    dense IDs are assigned re-keys every cached table, because the
    ID-indexed rows rebuilt at load time must match the layout the table
    was validated under.
    """
    payload = {
        "id_layout": ID_LAYOUT_VERSION,
        "start": grammar.start.name,
        "productions": [
            [p.lhs.name, [s.name for s in p.rhs],
             p.prec_symbol.name if p.prec_symbol else None]
            for p in grammar.productions
        ],
        "precedence": sorted(
            (s.name, prec.level, prec.assoc.value)
            for s, prec in grammar.precedence.items()
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


#: The in-memory session memo key is the same digest: one sha256 over one
#: serialised blob, cheap enough to compute per edit.
grammar_content_key = grammar_fingerprint


def production_fingerprint(production: Production) -> str:
    """Content hash of one rule: lhs, rhs spelling, effective %prec.

    Index-free on purpose — two grammars that state the same rule at
    different positions yield the same per-rule digest, which is what the
    writer/reader roundtrip and delta diagnostics compare.
    """
    payload = [
        production.lhs.name,
        [s.name for s in production.rhs],
        production.prec_symbol.name if production.prec_symbol else None,
    ]
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


def production_fingerprints(grammar: Grammar) -> List[str]:
    """Per-production content hashes, in production order."""
    return [production_fingerprint(p) for p in grammar.productions]


def text_fingerprint(*parts: str) -> str:
    """sha256 over *parts* joined by NUL bytes — the corpus identity shape.

    ``text_fingerprint(oracle, text)`` reproduces the historical failure
    fingerprint ``sha256(oracle + b"\\x00" + text)`` exactly.
    """
    digest = hashlib.sha256()
    for i, part in enumerate(parts):
        if i:
            digest.update(b"\x00")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


def grammar_text(grammar: Grammar) -> str:
    """The grammar's canonical arrow text minus ``%name`` lines.

    This is the *structural* spelling fuzz-failure identities hash: the
    grammar name carries the generating seed and must not distinguish
    otherwise-identical failures.
    """
    from .writer import write_arrow

    return "\n".join(
        line
        for line in write_arrow(grammar).splitlines()
        if not line.startswith("%name ")
    )

"""The oracle stack: every cross-implementation agreement check, shared.

An *oracle* inspects one grammar through two independent implementations
of the same specification and reports any disagreement.  The stack is the
single source of truth for "what must agree": the hypothesis property
tests, the Table 6 benchmark and the fuzz campaign all consume it, so a
new invariant added here is immediately checked everywhere.

Registered oracles (in stack order):

- ``lookahead-equivalence`` — LA_DP == LA_merge == LA_propagation, the
  paper's headline theorem (Theorem 9 / §6).
- ``superset-chain`` — LA ⊆ LA_NQLALR ⊆ FOLLOW: the exact sets sit at
  the bottom of the approximation hierarchy (§7).
- ``digraph-identity`` — the generic :func:`~repro.core.digraph.digraph`
  and the integer-core :func:`~repro.core.digraph.digraph_int` perform
  the *identical* traversal on the same CSR input: same F* masks, same
  SCCs, same :class:`~repro.core.digraph.DigraphStats`.
- ``table-agreement`` — the LALR table filled from DP bitmasks is
  cell-for-cell identical to one filled from merged-LR(1) lookaheads.
- ``sentence-roundtrip`` — generated sentences parse to identical
  derivation trees under the LALR and canonical-LR(1) engines.
- ``representation-parity`` — the plain LALR table, its compressed
  (default-reduce) form, its displacement-packed form and a binary
  serialisation round-trip drive the engine to identical derivations
  *and* identical diagnostics (message, position, expected set) on both
  accepted sentences and deterministic mutants.
- ``glr-parity`` — the GLR engine run over the same table: on
  deterministic tables its forest holds exactly the LALR parse (or the
  byte-identical diagnostic); on conflicted tables its recognition
  agrees with CYK.

Each oracle takes an :class:`OracleContext` (which lazily builds and
caches the shared artifacts — automaton, analyses, tables) and returns
``None`` on agreement or a human-readable detail string on disagreement.
A crash inside an oracle is itself a finding and is reported as a
failure, never propagated.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..automaton.lr0 import LR0Automaton
from ..core import instrument
from ..core.digraph import DigraphStats, digraph, digraph_int
from ..grammar.fingerprint import grammar_text, text_fingerprint
from ..grammar.grammar import Grammar

Oracle = Callable[["OracleContext"], Optional[str]]

#: Registry, in stack order.  ``repro fuzz run --oracles`` and the tests
#: address oracles by these names.
ORACLES: "Dict[str, Oracle]" = {}

#: Oracles excluded from the default stack: they run only when selected
#: by name (``repro fuzz run --edit-oracle`` / ``--oracles``) or when a
#: persisted corpus entry replays them.  Keeps opt-in additions from
#: changing every existing campaign's workload and output.
OPT_IN_ORACLES: "set[str]" = set()


def oracle(name: str, default: bool = True) -> Callable[[Oracle], Oracle]:
    """Register an oracle under *name* (decorator).

    ``default=False`` registers it as opt-in: addressable by name and
    replayable from the corpus, but not part of the default stack.
    """

    def register(fn: Oracle) -> Oracle:
        assert name not in ORACLES, f"duplicate oracle {name!r}"
        ORACLES[name] = fn
        if not default:
            OPT_IN_ORACLES.add(name)
        return fn

    return register


def oracle_names() -> List[str]:
    """All registered oracle names, in stack order."""
    return list(ORACLES)


def default_oracle_names() -> List[str]:
    """The default stack: every registered oracle that is not opt-in."""
    return [name for name in ORACLES if name not in OPT_IN_ORACLES]


class OracleFailure:
    """One oracle disagreement (or oracle crash) on one grammar."""

    __slots__ = ("oracle", "detail", "grammar", "kind")

    def __init__(
        self, oracle: str, detail: str, grammar: Grammar, kind: str = "disagreement"
    ):
        self.oracle = oracle
        self.detail = detail
        self.grammar = grammar
        self.kind = kind

    def describe(self) -> str:
        return f"[{self.oracle}] {self.kind} on {self.grammar.name!r}: {self.detail}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OracleFailure({self.describe()})"


def failure_fingerprint(oracle_name: str, grammar: Grammar) -> str:
    """Stable identity of a failure: the oracle plus the grammar's text.

    Two campaign draws that reduce to the same grammar and trip the same
    oracle are the *same* bug; the corpus dedups on this.  The grammar
    name (which carries the generating seed) is excluded — identity is
    structural.
    """
    return text_fingerprint(oracle_name, grammar_text(grammar))


class OracleContext:
    """Shared, lazily built artifacts for one grammar under test.

    Args:
        grammar: The grammar (augmented on demand, cached).
        seed: Drives sentence generation for the round-trip oracle.
        sentence_count / sentence_budget: Round-trip workload size.
        clr_state_bound: Canonical-LR(1) construction is exponential-prone;
            CLR-based oracles skip (agree vacuously) when the LR(0)
            automaton exceeds this many states.  ``0`` disables the bound.
    """

    def __init__(
        self,
        grammar: Grammar,
        seed: int = 0,
        sentence_count: int = 4,
        sentence_budget: int = 12,
        clr_state_bound: int = 60,
    ):
        self.grammar = grammar
        self.seed = seed
        self.sentence_count = sentence_count
        self.sentence_budget = sentence_budget
        self.clr_state_bound = clr_state_bound
        self._augmented: "Grammar | None" = None
        self._automaton: "LR0Automaton | None" = None
        self._lalr = None
        self._merged = None
        self._lalr_table = None
        self._clr_table = None

    # -- cached artifacts ----------------------------------------------

    @property
    def augmented(self) -> Grammar:
        if self._augmented is None:
            g = self.grammar
            self._augmented = g if g.is_augmented else g.augmented()
        return self._augmented

    @property
    def automaton(self) -> LR0Automaton:
        if self._automaton is None:
            self._automaton = LR0Automaton(self.augmented)
        return self._automaton

    @property
    def lalr(self):
        """The DeRemer–Pennello analysis (LalrAnalysis)."""
        if self._lalr is None:
            from ..core.lalr import LalrAnalysis

            self._lalr = LalrAnalysis(self.augmented, self.automaton)
        return self._lalr

    @property
    def merged(self):
        """The canonical-LR(1)-merging baseline (MergedLr1Analysis)."""
        if self._merged is None:
            from ..baselines.merge_lr1 import MergedLr1Analysis

            self._merged = MergedLr1Analysis(self.augmented, self.automaton)
        return self._merged

    @property
    def lalr_table(self):
        if self._lalr_table is None:
            from ..tables.build import build_lalr_table

            self._lalr_table = build_lalr_table(self.augmented, self.automaton)
        return self._lalr_table

    @property
    def clr_table(self):
        if self._clr_table is None:
            from ..tables.build import build_clr_table

            self._clr_table = build_clr_table(self.augmented)
        return self._clr_table

    @property
    def clr_in_bounds(self) -> bool:
        """Whether CLR-based oracles should run on this grammar."""
        bound = self.clr_state_bound
        return bound <= 0 or len(self.automaton) <= bound

    def sentences(self) -> List[list]:
        """The round-trip workload: deterministic sentences of the grammar."""
        from ..analysis.derive import SentenceGenerator

        generator = SentenceGenerator(self.augmented, seed=self.seed)
        return generator.sentences(self.sentence_count, budget=self.sentence_budget)


def run_oracles(
    grammar: Grammar,
    names: "Optional[Sequence[str]]" = None,
    context: "Optional[OracleContext]" = None,
    **context_knobs,
) -> List[OracleFailure]:
    """Run (a subset of) the oracle stack on one grammar.

    Args:
        grammar: The grammar under test.
        names: Oracle names to run (default: the whole stack, in order).
            Unknown names raise KeyError — callers validate user input.
        context: A pre-built context to reuse; otherwise one is created
            from *context_knobs* (seed, sentence_count, ...).

    Returns:
        Every disagreement found (empty list == full agreement).  An
        oracle that crashes contributes a ``kind="crash"`` failure.
    """
    if context is None:
        context = OracleContext(grammar, **context_knobs)
    selected = default_oracle_names() if names is None else list(names)
    failures: List[OracleFailure] = []
    for name in selected:
        check = ORACLES[name]
        with instrument.span(f"fuzz.oracle.{name}"):
            try:
                detail = check(context)
            except Exception as error:  # a crash is a finding, not an abort
                failures.append(
                    OracleFailure(
                        name,
                        f"{type(error).__name__}: {error}",
                        grammar,
                        kind="crash",
                    )
                )
                continue
        if detail is not None:
            failures.append(OracleFailure(name, detail, grammar))
    instrument.count("fuzz.oracle_runs", len(selected))
    return failures


# -- the stack ---------------------------------------------------------


@oracle("lookahead-equivalence")
def check_lookahead_equivalence(ctx: OracleContext) -> Optional[str]:
    """LA_DP == LA_merge == LA_propagation, site for site."""
    from ..baselines.propagation import PropagationAnalysis

    dp = ctx.lalr.lookahead_table()
    merged = ctx.merged.lookahead_table()
    propagated = PropagationAnalysis(ctx.augmented, ctx.automaton).lookahead_table()
    if dp.keys() != merged.keys() or dp.keys() != propagated.keys():
        return (
            f"reduction-site sets differ: dp={len(dp)}, "
            f"merge={len(merged)}, propagation={len(propagated)}"
        )
    for site in dp:
        if not (dp[site] == merged[site] == propagated[site]):
            return (
                f"LA{site}: dp={_spell(dp[site])} "
                f"merge={_spell(merged[site])} propagation={_spell(propagated[site])}"
            )
    return None


@oracle("superset-chain")
def check_superset_chain(ctx: OracleContext) -> Optional[str]:
    """LA ⊆ LA_NQLALR ⊆ FOLLOW on every reduction site."""
    from ..baselines.nqlalr import NqlalrAnalysis
    from ..baselines.slr import SlrAnalysis

    exact = ctx.lalr.lookahead_table()
    loose = NqlalrAnalysis(ctx.augmented, ctx.automaton).lookahead_table()
    follow = SlrAnalysis(ctx.augmented, ctx.automaton).lookahead_table()
    if exact.keys() != loose.keys() or exact.keys() != follow.keys():
        return (
            f"reduction-site sets differ: dp={len(exact)}, "
            f"nqlalr={len(loose)}, slr={len(follow)}"
        )
    for site in exact:
        if not exact[site] <= loose[site]:
            return f"LA{site} ⊄ NQLALR{site}: {_spell(exact[site] - loose[site])} missing"
        if not loose[site] <= follow[site]:
            return f"NQLALR{site} ⊄ FOLLOW: {_spell(loose[site] - follow[site])} missing"
    return None


@oracle("digraph-identity")
def check_digraph_identity(ctx: OracleContext) -> Optional[str]:
    """Generic digraph vs digraph_int: identical F*, SCCs and stats.

    Both implementations run on the *same* CSR input (the relations the
    LALR pipeline actually built), for both passes — `reads` seeded with
    DR and `includes` seeded with the Read masks — so any divergence in
    traversal order, union counts or SCC detection is caught.
    """
    relations = ctx.lalr.relations
    n = relations.n_nodes
    passes = [
        ("reads", relations.reads_offsets, relations.reads_adj, relations.dr_masks),
        (
            "includes",
            relations.includes_offsets,
            relations.includes_adj,
            ctx.lalr._read_masks,
        ),
    ]
    for label, offsets, adj, initial in passes:
        generic_stats, int_stats = DigraphStats(), DigraphStats()
        adjacency = {
            x: list(adj[offsets[x] : offsets[x + 1]]) for x in range(n)
        }
        generic_result, generic_sccs = digraph(
            list(range(n)),
            lambda x: adjacency[x],
            lambda x: initial[x],
            generic_stats,
        )
        int_result, int_sccs = digraph_int(n, offsets, adj, initial, int_stats)
        if [generic_result[x] for x in range(n)] != list(int_result):
            return f"{label}: F* masks differ between digraph and digraph_int"
        if sorted(map(sorted, generic_sccs)) != sorted(map(sorted, int_sccs)):
            return f"{label}: SCC sets differ ({generic_sccs} vs {int_sccs})"
        if generic_stats.as_dict() != int_stats.as_dict():
            return (
                f"{label}: DigraphStats differ "
                f"({generic_stats.as_dict()} vs {int_stats.as_dict()})"
            )
    return None


@oracle("table-agreement")
def check_table_agreement(ctx: OracleContext) -> Optional[str]:
    """The LALR table equals one filled from merged-LR(1) lookaheads.

    Both tables live on the same LR(0) automaton, so the comparison is
    cell-for-cell: ACTION, GOTO and the determinism verdict must all
    match.  (On conflicted grammars the yacc tie-breaks are deterministic
    functions of the lookahead sets, so equality must still hold.)
    """
    from ..tables.build import build_lalr_table

    dp_table = ctx.lalr_table
    merged_table = build_lalr_table(
        ctx.augmented, ctx.automaton, lookahead_table=ctx.merged.lookahead_table()
    )
    if dp_table.is_deterministic != merged_table.is_deterministic:
        return (
            f"determinism differs: dp={dp_table.is_deterministic} "
            f"merge={merged_table.is_deterministic}"
        )
    for state in range(dp_table.n_states):
        if dp_table.actions[state] != merged_table.actions[state]:
            return f"ACTION row {state} differs between dp and merged-LR(1) fills"
        if dp_table.gotos[state] != merged_table.gotos[state]:
            return f"GOTO row {state} differs between dp and merged-LR(1) fills"
    return None


@oracle("sentence-roundtrip")
def check_sentence_roundtrip(ctx: OracleContext) -> Optional[str]:
    """Generated sentences parse identically under LALR and CLR engines.

    Applies to grammars whose LALR table is deterministic (then CLR must
    be too — merging never removes conflicts); skipped when the automaton
    exceeds the context's CLR bound.
    """
    from ..parser.engine import Parser

    if not ctx.clr_in_bounds:
        return None
    lalr_table = ctx.lalr_table
    if not lalr_table.is_deterministic:
        return None
    clr_table = ctx.clr_table
    if not clr_table.is_deterministic:
        return "LALR table is deterministic but the canonical-LR(1) table is not"
    lalr_parser = Parser(lalr_table)
    clr_parser = Parser(clr_table)
    for sentence in ctx.sentences():
        words = [symbol.name for symbol in sentence]
        lalr_tree = lalr_parser.parse(sentence)
        clr_tree = clr_parser.parse(sentence)
        if lalr_tree.sexpr() != clr_tree.sexpr():
            return (
                f"derivations differ on {' '.join(words)!r}: "
                f"LALR={lalr_tree.sexpr()} CLR={clr_tree.sexpr()}"
            )
    return None


@oracle("representation-parity")
def check_representation_parity(ctx: OracleContext) -> Optional[str]:
    """Every table representation is observationally identical.

    The compressed (default-reduce) table, the displacement-packed table,
    a binary round-trip (``table_from_bytes(table_to_bytes(t))``) and the
    hot-loop :func:`~repro.tables.specialize.specialize` recompilation
    must all drive the engine to the same derivation on every generated
    sentence and to the *same error* — message text, position and
    expected set — on deterministic mutants of those sentences.  This is
    the live form of the representation-parity regression suite, run on
    every fuzz-campaign grammar.
    """
    from ..parser.engine import Parser
    from ..parser.errors import ParseError
    from ..tables.binfmt import table_from_bytes, table_to_bytes
    from ..tables.compress import compress
    from ..tables.displace import displace
    from ..tables.specialize import specialize

    base = ctx.lalr_table
    if not base.is_deterministic:
        return None
    reference = Parser(base)
    variants = [
        ("compressed", Parser(compress(base))),
        ("displaced", Parser(displace(base))),
        ("binary", Parser(table_from_bytes(table_to_bytes(base), ctx.augmented))),
        # The specialized table additionally changes the *loop* the
        # engine runs (fused integer dispatch + default reductions), so
        # this variant pins engine parity, not just row parity.
        ("specialized", Parser(specialize(base))),
    ]

    sentences = ctx.sentences()
    terminals = sorted(ctx.augmented.terminals, key=lambda s: s.name)
    streams: List[list] = [list(sentence) for sentence in sentences]
    # Deterministic mutants, kept inside the grammar's own terminal
    # alphabet (out-of-grammar names take the engine's "unknown terminal"
    # path, which generated drivers deliberately do not share).
    for index, sentence in enumerate(sentences):
        if sentence:
            streams.append(list(sentence[:-1]))
            swapped = list(sentence)
            swapped[index % len(swapped)] = terminals[index % len(terminals)]
            streams.append(swapped)
    streams.append([])

    for words in streams:
        try:
            expected_outcome = ("tree", reference.parse(list(words)).sexpr())
        except ParseError as error:
            expected_outcome = (
                "error",
                str(error),
                error.position,
                [s.name for s in error.expected],
            )
        for label, parser in variants:
            try:
                outcome = ("tree", parser.parse(list(words)).sexpr())
            except ParseError as error:
                outcome = (
                    "error",
                    str(error),
                    error.position,
                    [s.name for s in error.expected],
                )
            if outcome != expected_outcome:
                rendered = " ".join(t.name for t in words) or "<empty>"
                return (
                    f"{label} table diverges on {rendered!r}: "
                    f"{outcome!r} != {expected_outcome!r}"
                )
    return None


@oracle("glr-parity")
def check_glr_parity(ctx: OracleContext) -> Optional[str]:
    """The GLR engine agrees with the ground truth for its table.

    On grammars whose LALR table is deterministic, the GLR forest must
    contain *exactly* the LALR parse on every generated sentence, and
    must fail with the byte-identical error (message, position, expected
    set) on deterministic mutants — the GSS degenerates to a chain, so
    any divergence is an engine bug.  On conflicted tables the
    deterministic engine is no reference; there GLR recognition must
    agree with CYK (the LR-independent membership oracle) on every
    stream.
    """
    from ..parser.engine import Parser
    from ..parser.errors import ParseError
    from ..parser.glr import GlrParser

    table = ctx.lalr_table
    glr = GlrParser(table)
    sentences = ctx.sentences()
    # No EOF in the swap alphabet: CYK (the conflicted-branch reference)
    # has no notion of an end marker.
    terminals = sorted(
        (t for t in ctx.augmented.terminals if t is not ctx.augmented.eof),
        key=lambda s: s.name,
    )
    streams: List[list] = [list(sentence) for sentence in sentences]
    for index, sentence in enumerate(sentences):
        if sentence:
            streams.append(list(sentence[:-1]))
            swapped = list(sentence)
            swapped[index % len(swapped)] = terminals[index % len(terminals)]
            streams.append(swapped)
    streams.append([])

    if table.is_deterministic:
        reference = Parser(table)
        for words in streams:
            rendered = " ".join(t.name for t in words) or "<empty>"
            try:
                expected = ("tree", reference.parse(list(words)).sexpr())
            except ParseError as error:
                expected = (
                    "error",
                    str(error),
                    error.position,
                    [s.name for s in error.expected],
                )
            try:
                forest = glr.parse_forest(list(words))
                count = forest.tree_count(limit=2)
                if count != 1:
                    return (
                        f"GLR forest holds {count} trees on {rendered!r} "
                        f"under a deterministic table (expected exactly 1)"
                    )
                outcome = ("tree", forest.tree().sexpr())
            except ParseError as error:
                outcome = (
                    "error",
                    str(error),
                    error.position,
                    [s.name for s in error.expected],
                )
            if outcome != expected:
                return (
                    f"GLR diverges from LALR on {rendered!r}: "
                    f"{outcome!r} != {expected!r}"
                )
        return None

    # Conflicted table: cross-check recognition against CYK on the raw
    # (pre-augmentation) grammar.
    raw = ctx.grammar
    if raw.is_augmented:
        return None
    from ..grammar.errors import GrammarValidationError
    from ..parser.cyk import CykRecognizer

    try:
        cyk = CykRecognizer(raw)
    except GrammarValidationError:
        return None
    for words in streams:
        rendered = " ".join(t.name for t in words) or "<empty>"
        glr_accepts = glr.accepts(list(words))
        cyk_accepts = cyk.accepts([t.name for t in words])
        if glr_accepts != cyk_accepts:
            return (
                f"GLR and CYK disagree on {rendered!r}: "
                f"GLR={glr_accepts} CYK={cyk_accepts}"
            )
    return None


@oracle("incremental-edit", default=False)
def check_incremental_edit(ctx: OracleContext) -> Optional[str]:
    """Session updates are bit-identical to from-scratch rebuilds.

    Drives an :class:`~repro.pipeline.session.AnalysisSession` through a
    deterministic (seed-derived) schedule of edits — rhs symbol swaps
    and substitutions, production additions and removals — and after
    every update compares the session's artifacts against a from-scratch
    pipeline on the edited grammar: state kernels and transitions, the
    LA dict (including insertion order), ACTION/GOTO rows dict and
    dense, conflict reports, and the SCC diagnostics (as sets — the
    incremental path may order the list differently).  Structural deltas
    must take the rebuild path, never a splice.

    Opt-in (``repro fuzz run --edit-oracle``): it multiplies the
    per-grammar workload by the edit count, so the default campaigns
    don't pay for it.
    """
    import random

    from ..core.lalr import LalrAnalysis
    from ..grammar.delta import DeltaKind, classify
    from ..pipeline import AnalysisSession
    from ..tables.build import build_lalr_table

    session = AnalysisSession(ctx.augmented)
    rng = random.Random((ctx.seed * 2654435761 + 97) % 2**31)
    for step in range(6):
        current = session.grammar
        edited = _random_session_edit(rng, current)
        if edited is None:
            continue
        delta_kind = classify(current, edited).kind
        report = session.update(edited)

        if delta_kind not in (DeltaKind.RHS, DeltaKind.IDENTICAL):
            if report.strategy == "splice":
                return (
                    f"step {step}: structural delta ({delta_kind}) was "
                    f"spliced instead of rebuilt"
                )

        reference = LalrAnalysis(session.grammar)
        reference_table = build_lalr_table(session.grammar, reference.automaton)
        mismatch = _session_mismatch(session, reference, reference_table)
        if mismatch:
            return f"step {step} ({report.describe()}): {mismatch}"
    return None


def _random_session_edit(rng, grammar):
    """One seed-driven edit of *grammar* (same SymbolTable), or None."""
    from ..grammar.delta import add_production, remove_production, replace_rhs

    terminals = [t for t in grammar.terminals if t is not grammar.eof]
    editable = [
        p for p in grammar.productions[1:] if len(p.rhs) >= 1
    ]
    if not editable or not terminals:
        return None
    choice = rng.randrange(4)
    if choice == 0:
        # Substitute one rhs position with a random terminal.
        production = rng.choice(editable)
        rhs = list(production.rhs)
        rhs[rng.randrange(len(rhs))] = rng.choice(terminals)
        return replace_rhs(grammar, production.index, rhs)
    if choice == 1:
        # Swap two rhs positions.
        candidates = [p for p in editable if len(p.rhs) >= 2]
        if not candidates:
            return None
        production = rng.choice(candidates)
        rhs = list(production.rhs)
        i = rng.randrange(len(rhs) - 1)
        rhs[i], rhs[i + 1] = rhs[i + 1], rhs[i]
        return replace_rhs(grammar, production.index, rhs)
    if choice == 2:
        # Append a fresh alternative (an add-remove delta).
        production = rng.choice(editable)
        return add_production(
            grammar,
            production.lhs,
            tuple(production.rhs) + (rng.choice(terminals),),
        )
    # Remove a production whose lhs keeps at least one other rule.
    by_lhs = {}
    for production in grammar.productions[1:]:
        by_lhs.setdefault(production.lhs, []).append(production)
    removable = [
        p for rules in by_lhs.values() if len(rules) > 1 for p in rules
    ]
    if not removable:
        return None
    return remove_production(grammar, rng.choice(removable).index)


def _session_mismatch(session, reference, reference_table) -> Optional[str]:
    """First bit-level divergence between session artifacts and a
    from-scratch pipeline, or None when identical."""
    automaton = session.automaton
    if len(automaton.states) != len(reference.automaton.states):
        return (
            f"state counts differ: session={len(automaton.states)} "
            f"scratch={len(reference.automaton.states)}"
        )
    for ours, theirs in zip(automaton.states, reference.automaton.states):
        if ours.kernel_codes != theirs.kernel_codes:
            return f"state {theirs.state_id}: kernels differ"
        if list(ours.targets) != list(theirs.targets):
            return f"state {theirs.state_id}: transition rows differ"
        if ours.reductions != theirs.reductions:
            return f"state {theirs.state_id}: reduction items differ"
    analysis = session.analysis
    if analysis.la_masks != reference.la_masks:
        return "LA masks differ"
    if list(analysis.la_masks) != list(reference.la_masks):
        return "LA site order differs"
    if analysis._read_masks != reference._read_masks:
        return "Read masks differ"
    if analysis._follow_masks != reference._follow_masks:
        return "Follow masks differ"
    if set(analysis.reads_sccs) != set(reference.reads_sccs):
        return "reads SCCs differ"
    if set(analysis.includes_sccs) != set(reference.includes_sccs):
        return "includes SCCs differ"
    table = session.table
    if table.actions != reference_table.actions:
        return "ACTION rows differ"
    if table.gotos != reference_table.gotos:
        return "GOTO rows differ"
    if table.action_rows != reference_table.action_rows:
        return "dense ACTION rows differ"
    if [list(row) for row in table.goto_rows] != [
        list(row) for row in reference_table.goto_rows
    ]:
        return "dense GOTO rows differ"
    ours = [c.describe(session.grammar) for c in table.conflicts]
    theirs = [c.describe(session.grammar) for c in reference_table.conflicts]
    if ours != theirs:
        return "conflict reports differ"
    return None


def _spell(terminals) -> str:
    return "{" + ", ".join(sorted(t.name for t in terminals)) + "}"

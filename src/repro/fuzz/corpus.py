"""The persistent failure corpus: disagreements that must never return.

Every distinct oracle failure a campaign finds is written to a directory
as one JSON file keyed by its fingerprint (oracle + reduced grammar
text).  Entries carry everything needed to reproduce without the random
generator: the grammar itself (in arrow format), the oracle that
disagreed, and the ``(bucket, seed, knobs)`` recipe that first found it.

Replaying an entry parses the stored grammar and re-runs its oracle:

- a failure that *still reproduces* means the bug is alive — replay
  reports it and CI fails;
- a failure that no longer reproduces is a **regression test**: the bug
  was fixed, and the entry pins the fix forever (tier-1 replays the
  committed corpus under ``tests/fuzz_corpus``).

Writes are atomic (temp file + ``os.replace``), mirroring the table
cache's crash-safety discipline, so a campaign killed mid-write never
leaves a torn entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from ..grammar.reader import load_grammar
from .oracles import OracleFailure, run_oracles

#: Bumped when the entry schema changes incompatibly.
ENTRY_VERSION = 1


class FailureEntry:
    """One corpus entry (see module docstring for the fields' roles)."""

    __slots__ = (
        "fingerprint",
        "oracle",
        "detail",
        "kind",
        "bucket",
        "seed",
        "knobs",
        "grammar_text",
        "minimized_text",
    )

    def __init__(
        self,
        fingerprint: str,
        oracle: str,
        detail: str,
        grammar_text: str,
        kind: str = "disagreement",
        bucket: str = "",
        seed: int = 0,
        knobs: "Optional[Dict[str, object]]" = None,
        minimized_text: str = "",
    ):
        self.fingerprint = fingerprint
        self.oracle = oracle
        self.detail = detail
        self.kind = kind
        self.bucket = bucket
        self.seed = seed
        self.knobs = dict(knobs or {})
        self.grammar_text = grammar_text
        self.minimized_text = minimized_text

    # -- (de)serialisation ---------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": ENTRY_VERSION,
            "fingerprint": self.fingerprint,
            "oracle": self.oracle,
            "detail": self.detail,
            "kind": self.kind,
            "bucket": self.bucket,
            "seed": self.seed,
            "knobs": self.knobs,
            "grammar": self.grammar_text,
            "minimized_grammar": self.minimized_text,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FailureEntry":
        return cls(
            fingerprint=payload["fingerprint"],
            oracle=payload["oracle"],
            detail=payload.get("detail", ""),
            kind=payload.get("kind", "disagreement"),
            bucket=payload.get("bucket", ""),
            seed=payload.get("seed", 0),
            knobs=payload.get("knobs", {}),
            grammar_text=payload["grammar"],
            minimized_text=payload.get("minimized_grammar", ""),
        )

    def grammar(self, minimized: bool = False):
        """Parse the stored grammar text (the minimized one if asked and
        available)."""
        text = self.minimized_text if minimized and self.minimized_text else self.grammar_text
        return load_grammar(text, name=f"corpus-{self.fingerprint[:12]}")

    def replay(self, **context_knobs) -> List[OracleFailure]:
        """Re-run this entry's oracle on the stored grammar.

        Empty result: the recorded disagreement no longer reproduces
        (the entry now acts as a pinned regression test).
        """
        context_knobs.setdefault("seed", self.seed)
        return run_oracles(self.grammar(), names=[self.oracle], **context_knobs)


class FailureCorpus:
    """A directory of :class:`FailureEntry` JSON files.

    Entries are named ``<fingerprint[:32]>.json``; the corpus never holds
    two entries for the same fingerprint, so re-running a campaign over a
    known-bad seed range is idempotent.
    """

    def __init__(self, directory: str):
        self.directory = directory

    # -- paths -----------------------------------------------------------

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint[:32]}.json")

    def fingerprints(self) -> List[str]:
        """Fingerprint prefixes of every entry on disk, sorted."""
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        return sorted(
            name[: -len(".json")] for name in names if name.endswith(".json")
        )

    def __len__(self) -> int:
        return len(self.fingerprints())

    # -- read / write ---------------------------------------------------

    def add(self, entry: FailureEntry) -> bool:
        """Persist *entry*; False when its fingerprint is already present."""
        path = self.path_for(entry.fingerprint)
        if os.path.exists(path):
            return False
        self._write(path, entry)
        return True

    def add_failure(self, campaign_failure) -> bool:
        """Persist a :class:`~repro.fuzz.campaign.CampaignFailure`."""
        failure = campaign_failure.failure
        return self.add(
            FailureEntry(
                fingerprint=campaign_failure.fingerprint,
                oracle=failure.oracle,
                detail=failure.detail,
                kind=failure.kind,
                bucket=campaign_failure.bucket,
                seed=campaign_failure.seed,
                knobs=campaign_failure.knobs,
                grammar_text=campaign_failure.grammar_text,
            )
        )

    def update(self, entry: FailureEntry) -> None:
        """Rewrite an existing entry (e.g. after minimization)."""
        self._write(self.path_for(entry.fingerprint), entry)

    def get(self, fingerprint_prefix: str) -> FailureEntry:
        """The unique entry whose fingerprint starts with the prefix.

        Raises KeyError when no entry matches or the prefix is ambiguous.
        """
        matches = [
            f for f in self.fingerprints() if f.startswith(fingerprint_prefix)
        ]
        if not matches:
            raise KeyError(f"no corpus entry matches {fingerprint_prefix!r}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous prefix {fingerprint_prefix!r}: {', '.join(matches)}"
            )
        return self.load(matches[0])

    def load(self, fingerprint: str) -> FailureEntry:
        with open(self.path_for(fingerprint), "r", encoding="utf-8") as handle:
            return FailureEntry.from_dict(json.load(handle))

    def entries(self) -> List[FailureEntry]:
        """All entries, in fingerprint order."""
        return [self.load(f) for f in self.fingerprints()]

    # -- replay ----------------------------------------------------------

    def replay_all(self, **context_knobs) -> "Dict[str, List[OracleFailure]]":
        """Replay every entry; maps fingerprint -> surviving failures.

        An empty list per fingerprint means that entry's bug is fixed and
        stays fixed — the regression-test half of the corpus contract.
        """
        return {
            entry.fingerprint: entry.replay(**context_knobs)
            for entry in self.entries()
        }

    # -- internals -------------------------------------------------------

    def _write(self, path: str, entry: FailureEntry) -> None:
        os.makedirs(self.directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

"""The deterministic fuzz campaign driver.

A campaign sweeps a seed range across grammar *shape buckets* (knob
presets for :func:`repro.grammars.random_gen.random_grammar` spanning the
shapes that historically found bugs: nullable-rich, wide, long-RHS,
degenerate-small) and runs every generated grammar through the oracle
stack.  Everything is derived from one campaign seed, so a failing run
reproduces bit-for-bit from ``repro fuzz run --seed N``.

Failures are fingerprinted (oracle + reduced grammar text), deduplicated
within the run and against the optional persistent corpus, and reported
with the exact ``(bucket, seed, knobs)`` triple that regenerates the
grammar.  An optional wall-clock budget makes the driver safe to run
under CI time limits: the sweep stops early but reports how far it got.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import instrument
from ..core.budget import Budget
from ..core.parallel import chunked, parallel_imap
from ..grammar.errors import GrammarValidationError
from ..grammar.grammar import Grammar
from ..grammar.reader import load_grammar
from ..grammar.writer import write_arrow
from ..grammars.random_gen import random_grammar
from .corpus import FailureCorpus
from .oracles import OracleFailure, failure_fingerprint, run_oracles


class ShapeBucket:
    """A named preset of random-grammar shape knobs."""

    __slots__ = ("label", "knobs")

    def __init__(self, label: str, knobs: Dict[str, object]):
        self.label = label
        self.knobs = dict(knobs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShapeBucket({self.label!r}, {self.knobs!r})"


#: The default sweep: four-plus structurally distinct shape families.
DEFAULT_BUCKETS: Tuple[ShapeBucket, ...] = (
    ShapeBucket("small", dict(n_nonterminals=3, n_terminals=3, epsilon_weight=0.1)),
    ShapeBucket(
        "nullable-heavy", dict(n_nonterminals=4, n_terminals=3, epsilon_weight=0.35)
    ),
    ShapeBucket("wide", dict(n_nonterminals=6, n_terminals=5, epsilon_weight=0.15)),
    ShapeBucket(
        "long-rhs",
        dict(n_nonterminals=4, n_terminals=4, max_rhs_len=7, epsilon_weight=0.1),
    ),
    ShapeBucket(
        "lean",
        dict(
            n_nonterminals=2,
            n_terminals=2,
            max_alternatives=2,
            max_rhs_len=2,
            epsilon_weight=0.25,
        ),
    ),
)

#: Mixes the campaign seed and draw index into a grammar seed.  The odd
#: multiplier keeps consecutive campaigns from overlapping seed ranges.
_SEED_STRIDE = 7_777_777


def grammar_seed(campaign_seed: int, index: int) -> int:
    """The deterministic per-draw grammar seed."""
    return (campaign_seed * _SEED_STRIDE + index) % (2**31)


def bucket_grammars(
    bucket: ShapeBucket, count: int, campaign_seed: int = 0, base_index: int = 0
) -> List[Grammar]:
    """*count* grammars of one bucket's shape (shared by the Table 6
    benchmark, which sweeps whole buckets outside a campaign)."""
    grammars = []
    for i in range(count):
        try:
            grammars.append(
                random_grammar(
                    grammar_seed(campaign_seed, base_index + i), **bucket.knobs
                )
            )
        except GrammarValidationError:
            continue
    return grammars


class CampaignConfig:
    """Everything a campaign run depends on (all deterministic)."""

    def __init__(
        self,
        seed: int = 0,
        count: int = 500,
        buckets: Sequence[ShapeBucket] = DEFAULT_BUCKETS,
        oracles: "Optional[Sequence[str]]" = None,
        time_budget: float = 0.0,
        sentence_count: int = 4,
        sentence_budget: int = 12,
        clr_state_bound: int = 60,
    ):
        self.seed = seed
        self.count = count
        self.buckets = list(buckets)
        self.oracles = list(oracles) if oracles is not None else None
        self.time_budget = time_budget
        self.sentence_count = sentence_count
        self.sentence_budget = sentence_budget
        self.clr_state_bound = clr_state_bound


class CampaignFailure:
    """One deduplicated oracle failure with its reproduction recipe."""

    __slots__ = ("bucket", "seed", "knobs", "failure", "fingerprint", "grammar_text")

    def __init__(
        self,
        bucket: str,
        seed: int,
        knobs: Dict[str, object],
        failure: OracleFailure,
        fingerprint: str,
        grammar_text: str,
    ):
        self.bucket = bucket
        self.seed = seed
        self.knobs = knobs
        self.failure = failure
        self.fingerprint = fingerprint
        self.grammar_text = grammar_text

    def describe(self) -> str:
        return (
            f"{self.fingerprint[:12]} bucket={self.bucket} seed={self.seed} "
            f"{self.failure.describe()}"
        )


class CampaignReport:
    """The outcome of one campaign run."""

    def __init__(self) -> None:
        self.grammars_run = 0
        self.per_bucket: Dict[str, int] = {}
        self.failures: List[CampaignFailure] = []
        self.duplicate_failures = 0
        self.generation_errors = 0
        self.elapsed = 0.0
        self.stopped_early = False
        self.new_corpus_entries = 0

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary_lines(self) -> List[str]:
        lines = [
            f"grammars: {self.grammars_run}"
            + (" (stopped early: time budget)" if self.stopped_early else ""),
            "buckets: "
            + ", ".join(f"{label}={n}" for label, n in sorted(self.per_bucket.items())),
            f"failures: {len(self.failures)} distinct"
            + (f" (+{self.duplicate_failures} duplicates)" if self.duplicate_failures else ""),
        ]
        if self.generation_errors:
            lines.append(f"generation errors: {self.generation_errors}")
        if self.new_corpus_entries:
            lines.append(f"new corpus entries: {self.new_corpus_entries}")
        lines.append(f"elapsed: {self.elapsed:.2f}s")
        return lines


#: Sweep indices per worker task: large enough to amortize process IPC,
#: small enough for responsive progress and time-budget checks.
_PARALLEL_CHUNK = 25


def _sweep_chunk(config: CampaignConfig, indices: "List[int]") -> "List[tuple]":
    """Worker: one slice of the sweep as plain picklable records.

    Each record is ``(index, bucket_label, seed, grammar_text, failures)``
    where *grammar_text* is None for a generation error and *failures* is
    a tuple of ``(oracle, detail, kind, fingerprint)``.  Grammar objects
    never cross the process boundary; the merge side reparses the arrow
    text for the (rare) failing draws only.
    """
    records: "List[tuple]" = []
    for index in indices:
        bucket = config.buckets[index % len(config.buckets)]
        seed = grammar_seed(config.seed, index)
        try:
            grammar = random_grammar(seed, **bucket.knobs)
        except GrammarValidationError:
            records.append((index, bucket.label, seed, None, ()))
            continue
        failures = run_oracles(
            grammar,
            names=config.oracles,
            seed=seed,
            sentence_count=config.sentence_count,
            sentence_budget=config.sentence_budget,
            clr_state_bound=config.clr_state_bound,
        )
        records.append(
            (
                index,
                bucket.label,
                seed,
                write_arrow(grammar) if failures else "",
                tuple(
                    (f.oracle, f.detail, f.kind, failure_fingerprint(f.oracle, grammar))
                    for f in failures
                ),
            )
        )
    return records


def _run_campaign_parallel(
    config: CampaignConfig,
    corpus: "Optional[FailureCorpus]",
    progress: "Optional[Callable[[int, int], None]]",
    workers: int,
    budget: "Optional[Budget]",
) -> CampaignReport:
    """The multi-worker sweep: fan chunks out, merge records in order.

    Dedup, corpus persistence and bucket accounting all happen on the
    merge side in draw-index order, so the report and any corpus writes
    are identical to a serial run of the same config.  Deadline
    enforcement lives in the executor: :func:`parallel_imap` stops
    yielding (and cancels in-flight workers) once the budget expires, so
    an early stop may land on a chunk boundary.
    """
    report = CampaignReport()
    seen: "set[str]" = set()
    start = time.monotonic()
    done = 0
    with instrument.span("fuzz.campaign"):
        chunks = chunked(range(config.count), _PARALLEL_CHUNK)
        sweep = parallel_imap(
            functools.partial(_sweep_chunk, config),
            chunks,
            workers=workers,
            budget=budget,
        )
        for records in sweep:
            for index, label, seed, grammar_text, failures in records:
                if grammar_text is None:
                    report.generation_errors += 1
                    instrument.count("fuzz.generation_errors")
                    continue
                report.grammars_run += 1
                report.per_bucket[label] = report.per_bucket.get(label, 0) + 1
                instrument.count("fuzz.grammars")
                if not failures:
                    continue
                grammar = load_grammar(grammar_text)
                knobs = config.buckets[index % len(config.buckets)].knobs
                for oracle_name, detail, kind, fingerprint in failures:
                    instrument.count("fuzz.failures")
                    if fingerprint in seen:
                        report.duplicate_failures += 1
                        continue
                    seen.add(fingerprint)
                    campaign_failure = CampaignFailure(
                        label,
                        seed,
                        knobs,
                        OracleFailure(oracle_name, detail, grammar, kind=kind),
                        fingerprint,
                        grammar_text,
                    )
                    report.failures.append(campaign_failure)
                    if corpus is not None:
                        if corpus.add_failure(campaign_failure):
                            report.new_corpus_entries += 1
                        else:
                            report.duplicate_failures += 1
            if records:
                done = records[-1][0] + 1
            if progress is not None and records:
                progress(done, config.count)
    if budget is not None and done < config.count:
        report.stopped_early = True
    report.elapsed = time.monotonic() - start
    return report


def run_campaign(
    config: CampaignConfig,
    corpus: "Optional[FailureCorpus]" = None,
    progress: "Optional[Callable[[int, int], None]]" = None,
    workers: int = 1,
    budget: "Optional[Budget]" = None,
) -> CampaignReport:
    """Run one campaign: generate, check, fingerprint, persist.

    Draw *i* uses bucket ``i % len(buckets)`` and grammar seed
    :func:`grammar_seed`, so the whole sweep is a pure function of
    *config* — any failure line can be replayed in isolation.  With
    ``workers > 1`` the sweep fans out over forked worker processes via
    :mod:`repro.core.parallel`; results merge in draw order, so the
    report, failure list and corpus contents stay identical to a serial
    run (only profile counters recorded inside workers, and the exact
    draw a deadline stops on, can differ).

    Args:
        config: The campaign parameters.
        corpus: When given, every distinct failure is persisted to it
            (and failures already on disk count as duplicates).
        progress: Optional ``progress(done, total)`` callback.
        workers: Worker process count; ``<= 1`` runs serial in-process.
        budget: Shared :class:`repro.core.budget.Budget`; the campaign
            polls it (never raises) and stops gracefully at a draw/chunk
            boundary, reporting ``stopped_early``.  When omitted, a
            nonzero ``config.time_budget`` is wrapped in one.
    """
    if budget is None and config.time_budget:
        budget = Budget(timeout=config.time_budget)
    if workers > 1:
        return _run_campaign_parallel(config, corpus, progress, workers, budget)
    report = CampaignReport()
    seen: "set[str]" = set()
    start = time.monotonic()
    with instrument.span("fuzz.campaign"):
        for index in range(config.count):
            if budget is not None and budget.expired():
                report.stopped_early = True
                break
            bucket = config.buckets[index % len(config.buckets)]
            seed = grammar_seed(config.seed, index)
            with instrument.span("fuzz.generate"):
                try:
                    grammar = random_grammar(seed, **bucket.knobs)
                except GrammarValidationError:
                    report.generation_errors += 1
                    instrument.count("fuzz.generation_errors")
                    continue
            report.grammars_run += 1
            report.per_bucket[bucket.label] = report.per_bucket.get(bucket.label, 0) + 1
            instrument.count("fuzz.grammars")
            failures = run_oracles(
                grammar,
                names=config.oracles,
                seed=seed,
                sentence_count=config.sentence_count,
                sentence_budget=config.sentence_budget,
                clr_state_bound=config.clr_state_bound,
            )
            for failure in failures:
                instrument.count("fuzz.failures")
                fingerprint = failure_fingerprint(failure.oracle, grammar)
                if fingerprint in seen:
                    report.duplicate_failures += 1
                    continue
                seen.add(fingerprint)
                campaign_failure = CampaignFailure(
                    bucket.label,
                    seed,
                    bucket.knobs,
                    failure,
                    fingerprint,
                    write_arrow(grammar),
                )
                report.failures.append(campaign_failure)
                if corpus is not None:
                    if corpus.add_failure(campaign_failure):
                        report.new_corpus_entries += 1
                    else:
                        report.duplicate_failures += 1
            if progress is not None:
                progress(index + 1, config.count)
    report.elapsed = time.monotonic() - start
    return report

"""Differential fuzzing of the equivalence theorem.

The paper's central claim — the DeRemer–Pennello LA sets equal both
canonical-LR(1) merging and yacc-style propagation on *every* grammar —
is the invariant most at risk of silent regression whenever the core is
refactored.  This package keeps it honest at scale:

- :mod:`~repro.fuzz.oracles` — the pluggable oracle stack: every
  cross-implementation agreement the suite knows how to check, shared by
  the property tests, the Table 6 benchmark and the campaign driver.
- :mod:`~repro.fuzz.campaign` — a deterministic campaign driver sweeping
  seed ranges across grammar shape buckets.
- :mod:`~repro.fuzz.corpus` — the persistent failure corpus: every
  disagreement is fingerprinted, deduplicated and stored as a JSON entry
  that replays as a regression test.
- :mod:`~repro.fuzz.minimize` — a hypothesis-independent delta-debugging
  shrinker that reduces a failing grammar while re-checking the oracle.

CLI: ``repro fuzz run|replay|minimize`` (see :mod:`repro.cli`).
"""

from .campaign import (
    DEFAULT_BUCKETS,
    CampaignConfig,
    CampaignFailure,
    CampaignReport,
    ShapeBucket,
    bucket_grammars,
    run_campaign,
)
from .corpus import FailureCorpus, FailureEntry
from .minimize import MinimizeResult, minimize_grammar, oracle_predicate
from .oracles import (
    ORACLES,
    OracleContext,
    OracleFailure,
    failure_fingerprint,
    oracle_names,
    run_oracles,
)

__all__ = [
    "CampaignConfig",
    "CampaignFailure",
    "CampaignReport",
    "DEFAULT_BUCKETS",
    "FailureCorpus",
    "FailureEntry",
    "MinimizeResult",
    "ORACLES",
    "OracleContext",
    "OracleFailure",
    "ShapeBucket",
    "bucket_grammars",
    "failure_fingerprint",
    "minimize_grammar",
    "oracle_names",
    "oracle_predicate",
    "run_campaign",
    "run_oracles",
]

"""A hypothesis-independent delta-debugging grammar shrinker.

Given a grammar and a predicate ("does the failing oracle still fail?"),
:func:`minimize_grammar` greedily applies structure-shrinking steps and
keeps each one only if the predicate still holds on the rebuilt, reduced
grammar:

1. **drop production** — remove one alternative outright;
2. **drop nonterminal** — remove *every* alternative of one lhs at once
   (fast progress on grammars with many irrelevant nonterminals);
3. **shorten RHS** — delete one symbol from one production's rhs;
4. **merge nonterminals** — substitute one nonterminal for another
   everywhere and drop the replaced one's rules.

Passes repeat until a full round makes no progress, which yields a
1-minimal grammar with respect to these operations: removing any single
production or rhs symbol makes the failure disappear.  Candidates that no
longer build (start symbol dropped, empty language, validation error) are
simply skipped — the predicate never sees a broken grammar.

The shrinker deliberately shares nothing with hypothesis: corpus entries
must minimize offline, long after the generating process is gone.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core import instrument
from ..grammar.builder import GrammarBuilder
from ..grammar.grammar import Grammar
from ..grammar.transforms import reduce_grammar

#: A grammar as shrinkable data: (lhs name, rhs names) per production.
Rules = List[Tuple[str, Tuple[str, ...]]]

Predicate = Callable[[Grammar], bool]


def grammar_rules(grammar: Grammar) -> Rules:
    """The user-level productions of *grammar* as plain string rules."""
    productions = (
        grammar.productions[1:] if grammar.is_augmented else grammar.productions
    )
    return [
        (p.lhs.name, tuple(s.name for s in p.rhs)) for p in productions
    ]


def build_rules(rules: Rules, start: str, name: str = "minimized") -> Optional[Grammar]:
    """Materialise and reduce a rule list; None when it is not a valid
    grammar (start dropped, empty language, ...)."""
    if not any(lhs == start for lhs, _ in rules):
        return None
    builder = GrammarBuilder(name)
    for lhs, rhs in rules:
        builder.rule(lhs, list(rhs))
    try:
        return reduce_grammar(builder.build(start=start))
    except Exception:
        return None


class MinimizeResult:
    """The outcome of a minimization run."""

    __slots__ = ("grammar", "rules", "initial_productions", "steps_tried",
                 "steps_applied", "rounds")

    def __init__(
        self,
        grammar: Grammar,
        rules: Rules,
        initial_productions: int,
        steps_tried: int,
        steps_applied: int,
        rounds: int,
    ):
        self.grammar = grammar
        self.rules = rules
        self.initial_productions = initial_productions
        self.steps_tried = steps_tried
        self.steps_applied = steps_applied
        self.rounds = rounds

    @property
    def final_productions(self) -> int:
        return len(self.rules)

    def describe(self) -> str:
        return (
            f"{self.initial_productions} -> {self.final_productions} productions "
            f"({self.steps_applied}/{self.steps_tried} steps applied, "
            f"{self.rounds} round(s))"
        )


def minimize_grammar(
    grammar: Grammar,
    predicate: Predicate,
    max_rounds: int = 20,
) -> MinimizeResult:
    """Shrink *grammar* while *predicate* keeps holding.

    Args:
        grammar: A grammar on which ``predicate(grammar)`` is True (if it
            is not, the grammar is returned unchanged).
        predicate: True iff the failure of interest still reproduces.
            Called on *reduced* candidate grammars only.
        max_rounds: Safety bound on full passes (each pass is itself
            bounded by the grammar size, so this is rarely reached).
    """
    start = (
        grammar.original_start.name if grammar.is_augmented else grammar.start.name
    )
    rules = grammar_rules(grammar)
    current = build_rules(rules, start)
    if current is None or not predicate(current):
        # Nothing to do: the failure does not reproduce on the rebuilt
        # grammar, so any "shrink" would be meaningless.
        return MinimizeResult(grammar, rules, len(rules), 0, 0, 0)

    tried = applied = rounds = 0
    with instrument.span("fuzz.minimize"):
        for _ in range(max_rounds):
            rounds += 1
            progressed = False
            for candidate_rules in _shrink_candidates(rules, start):
                tried += 1
                candidate = build_rules(candidate_rules, start)
                if candidate is None:
                    continue
                with instrument.span("fuzz.minimize.check"):
                    still_fails = predicate(candidate)
                if still_fails:
                    rules = candidate_rules
                    current = candidate
                    applied += 1
                    progressed = True
                    break  # restart the pass on the smaller grammar
            if not progressed:
                break
    instrument.count("fuzz.minimize.steps", tried)
    return MinimizeResult(
        current, rules, len(grammar_rules(grammar)), tried, applied, rounds
    )


def _shrink_candidates(rules: Rules, start: str):
    """Candidate rule lists, most aggressive first.

    Ordering matters for speed, not correctness: dropping whole
    nonterminals discards many productions per accepted step, so it goes
    first; symbol-level edits polish the remainder.
    """
    nonterminals = []
    for lhs, _ in rules:
        if lhs not in nonterminals:
            nonterminals.append(lhs)

    # 2. drop nonterminal (all alternatives of one lhs).
    for victim in nonterminals:
        if victim == start:
            continue
        yield [(lhs, rhs) for lhs, rhs in rules if lhs != victim]

    # 4. merge nonterminals: replace `victim` with `survivor` everywhere.
    for victim in nonterminals:
        if victim == start:
            continue
        for survivor in nonterminals:
            if survivor == victim:
                continue
            merged: Rules = []
            for lhs, rhs in rules:
                if lhs == victim:
                    continue
                new_rhs = tuple(survivor if s == victim else s for s in rhs)
                if (lhs, new_rhs) not in merged:
                    merged.append((lhs, new_rhs))
            yield merged

    # 1. drop a single production.
    if len(rules) > 1:
        for index in range(len(rules)):
            yield rules[:index] + rules[index + 1 :]

    # 3. shorten one rhs by one symbol.
    for index, (lhs, rhs) in enumerate(rules):
        for position in range(len(rhs)):
            shortened = rhs[:position] + rhs[position + 1 :]
            candidate = list(rules)
            candidate[index] = (lhs, shortened)
            if candidate[index] in rules[:index] + rules[index + 1 :]:
                candidate.pop(index)  # became a duplicate of another rule
            yield candidate


def oracle_predicate(oracle_name: str, **context_knobs) -> Predicate:
    """A predicate that re-runs one named oracle (True = still fails)."""
    from .oracles import run_oracles

    def still_fails(grammar: Grammar) -> bool:
        return bool(run_oracles(grammar, names=[oracle_name], **context_knobs))

    return still_fails
